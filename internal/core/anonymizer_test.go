package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAnonymizerRoundTrip(t *testing.T) {
	a := NewAnonymizer(42)
	for _, u := range []UserID{0, 1, 1000, 1 << 31, 0xFFFFFFFF} {
		alias := a.AliasUser(u)
		got, ok := a.ResolveUser(alias, a.Epoch())
		if !ok || got != u {
			t.Fatalf("round trip failed for %v: got %v ok=%v", u, got, ok)
		}
	}
}

func TestAnonymizerItemRoundTrip(t *testing.T) {
	a := NewAnonymizer(42)
	alias := a.AliasItem(777)
	got, ok := a.ResolveItem(alias, a.Epoch())
	if !ok || got != 777 {
		t.Fatalf("item round trip: %v ok=%v", got, ok)
	}
}

func TestAnonymizerPreviousEpochStillResolvable(t *testing.T) {
	a := NewAnonymizer(1)
	epoch0 := a.Epoch()
	alias := a.AliasUser(33)
	a.Advance()
	got, ok := a.ResolveUser(alias, epoch0)
	if !ok || got != 33 {
		t.Fatalf("previous epoch unresolvable: %v ok=%v", got, ok)
	}
}

func TestAnonymizerStaleEpochRejected(t *testing.T) {
	a := NewAnonymizer(1)
	epoch0 := a.Epoch()
	alias := a.AliasUser(33)
	a.Advance()
	a.Advance()
	if _, ok := a.ResolveUser(alias, epoch0); ok {
		t.Fatal("two-epochs-old alias resolved")
	}
	if _, ok := a.ResolveUser(alias, a.Epoch()+1); ok {
		t.Fatal("future epoch resolved")
	}
}

func TestAnonymizerAdvanceChangesMapping(t *testing.T) {
	a := NewAnonymizer(7)
	before := a.AliasUser(5)
	a.Advance()
	after := a.AliasUser(5)
	if before == after {
		// Not impossible for one value, but with distinct random keys it is
		// (1/2^32)-unlikely; treat as failure to catch accidental key reuse.
		t.Fatal("alias unchanged after Advance")
	}
}

func TestAnonymizerDistinctSeedsDistinctMappings(t *testing.T) {
	a, b := NewAnonymizer(1), NewAnonymizer(2)
	same := 0
	for u := UserID(0); u < 64; u++ {
		if a.AliasUser(u) == b.AliasUser(u) {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("mappings from different seeds agree on %d of 64 points", same)
	}
}

// Property: the Feistel construction is a bijection — forward∘backward is
// identity for arbitrary 32-bit inputs and keys.
func TestFeistelBijectionProperty(t *testing.T) {
	prop := func(x uint32, k0, k1, k2, k3 uint32) bool {
		keys := feistelKeys{k0, k1, k2, k3}
		return feistelBackward(feistelForward(x, keys), keys) == x &&
			feistelForward(feistelBackward(x, keys), keys) == x
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: no collisions on a dense range (injectivity spot check).
func TestFeistelNoCollisions(t *testing.T) {
	a := NewAnonymizer(99)
	seen := make(map[UserID]UserID, 1<<16)
	for u := UserID(0); u < 1<<16; u++ {
		alias := a.AliasUser(u)
		if prev, dup := seen[alias]; dup {
			t.Fatalf("collision: %v and %v both map to %v", prev, u, alias)
		}
		seen[alias] = u
	}
}

// Aliases minted on a pinned View resolve correctly even while another
// goroutine rotates epochs: the view's Epoch and mapping are one snapshot.
// (Minting on the Anonymizer directly and reading Epoch() separately is
// NOT safe under rotation — that is exactly why job assembly uses View.)
func TestAnonymizerConcurrentUse(t *testing.T) {
	a := NewAnonymizer(5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u := UserID(g*1000 + i)
				view := a.View()
				alias := view.AliasUser(u)
				got, ok := a.ResolveUser(alias, view.Epoch())
				// A fast rotator can push the view ≥2 epochs behind, in
				// which case resolution is (correctly) refused — but a
				// successful resolution must never be wrong.
				if ok && got != u {
					t.Errorf("wrong resolution under concurrency: %v → %v", u, got)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			a.Advance()
		}
	}()
	wg.Wait()
	<-done
}

func TestViewConsistentSnapshot(t *testing.T) {
	a := NewAnonymizer(9)
	view := a.View()
	aliasBefore := view.AliasUser(42)
	epochBefore := view.Epoch()
	a.Advance()
	// The view must be frozen: same alias, same epoch, still resolvable
	// as the previous epoch.
	if view.AliasUser(42) != aliasBefore || view.Epoch() != epochBefore {
		t.Fatal("view changed after Advance")
	}
	got, ok := a.ResolveUser(aliasBefore, epochBefore)
	if !ok || got != 42 {
		t.Fatalf("previous-epoch alias no longer resolves: got %v ok=%v", got, ok)
	}
}

func TestIdentityAliaser(t *testing.T) {
	var id IdentityAliaser
	if id.AliasUser(7) != 7 || id.AliasItem(9) != 9 || id.Epoch() != 0 {
		t.Fatal("identity aliaser is not the identity")
	}
}

func BenchmarkAliasUser(b *testing.B) {
	a := NewAnonymizer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AliasUser(UserID(i))
	}
}
