package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func profileOf(u UserID, liked ...ItemID) Profile {
	p := NewProfile(u)
	for _, i := range liked {
		p = p.WithRating(i, true)
	}
	return p
}

func TestCosineKnownValues(t *testing.T) {
	a := profileOf(1, 1, 2, 3, 4)
	b := profileOf(2, 3, 4, 5, 6)
	// |∩| = 2, sqrt(4*4) = 4 → 0.5.
	if got := (Cosine{}).Score(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cosine = %v, want 0.5", got)
	}
}

func TestCosineIdenticalIsOne(t *testing.T) {
	a := profileOf(1, 1, 2, 3)
	b := profileOf(2, 1, 2, 3)
	if got := (Cosine{}).Score(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine identical = %v, want 1", got)
	}
}

func TestSimilaritiesEmptyAndDisjoint(t *testing.T) {
	empty := NewProfile(1)
	full := profileOf(2, 1, 2)
	other := profileOf(3, 5, 6)
	for _, m := range []Similarity{Cosine{}, Jaccard{}, Overlap{}} {
		if got := m.Score(empty, full); got != 0 {
			t.Errorf("%s(empty, full) = %v", m.Name(), got)
		}
		if got := m.Score(full, other); got != 0 {
			t.Errorf("%s(disjoint) = %v", m.Name(), got)
		}
	}
}

func TestJaccardKnownValues(t *testing.T) {
	a := profileOf(1, 1, 2, 3)
	b := profileOf(2, 2, 3, 4)
	// |∩|=2, |∪|=4 → 0.5.
	if got := (Jaccard{}).Score(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("jaccard = %v, want 0.5", got)
	}
}

func TestOverlapKnownValues(t *testing.T) {
	a := profileOf(1, 1, 2, 3)
	b := profileOf(2, 2, 3, 4)
	if got := (Overlap{}).Score(a, b); got != 2 {
		t.Fatalf("overlap = %v, want 2", got)
	}
}

func TestMetricNames(t *testing.T) {
	names := map[string]Similarity{"cosine": Cosine{}, "jaccard": Jaccard{}, "overlap": Overlap{}}
	for want, m := range names {
		if m.Name() != want {
			t.Errorf("Name = %q, want %q", m.Name(), want)
		}
	}
}

// Properties: symmetry; cosine and jaccard bounded in [0,1]; disliked items
// never influence similarity.
func TestSimilarityProperties(t *testing.T) {
	metrics := []Similarity{Cosine{}, Jaccard{}}
	prop := func(aLiked, bLiked []uint8, aDis, bDis []uint8) bool {
		a, b := NewProfile(1), NewProfile(2)
		for _, i := range aLiked {
			a = a.WithRating(ItemID(i), true)
		}
		for _, i := range bLiked {
			b = b.WithRating(ItemID(i), true)
		}
		aNoDis, bNoDis := a, b
		for _, i := range aDis {
			a = a.WithRating(ItemID(i)+1000, false)
		}
		for _, i := range bDis {
			b = b.WithRating(ItemID(i)+1000, false)
		}
		for _, m := range metrics {
			ab, ba := m.Score(a, b), m.Score(b, a)
			if ab != ba {
				return false
			}
			if ab < 0 || ab > 1+1e-12 {
				return false
			}
			if m.Score(aNoDis, bNoDis) != ab {
				return false // disliked items leaked into similarity
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCosine(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := NewProfile(1)
	c := NewProfile(2)
	for i := 0; i < 150; i++ {
		a = a.WithRating(ItemID(rng.Intn(2000)), true)
		c = c.WithRating(ItemID(rng.Intn(2000)), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(Cosine{}).Score(a, c)
	}
}
