package core

import "hyrec/internal/topk"

// SelectKNN implements Algorithm 1 of the paper, γ(P_u, S_u): it scores
// every candidate profile against p with the given similarity metric and
// returns the k most similar users, best first. The reference user is
// skipped if present in the candidate set. Ties break on the smaller
// UserID so the selection is deterministic.
//
// This is exactly the computation the HyRec widget performs in the browser;
// the centralized baselines reuse it server-side.
func SelectKNN(p Profile, candidates []Profile, k int, metric Similarity) []Neighbor {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	col := topk.New(k)
	for _, c := range candidates {
		if c.User() == p.User() {
			continue
		}
		col.Offer(uint32(c.User()), metric.Score(p, c))
	}
	entries := col.Sorted()
	out := make([]Neighbor, len(entries))
	for i, e := range entries {
		out[i] = Neighbor{User: UserID(e.ID), Sim: e.Score}
	}
	return out
}

// ViewSimilarity returns the mean similarity between p and its neighbors'
// profiles — the paper's "view similarity" metric (Section 5.1). It returns
// 0 for an empty neighborhood.
func ViewSimilarity(p Profile, neighborhood []Profile, metric Similarity) float64 {
	if len(neighborhood) == 0 {
		return 0
	}
	var sum float64
	for _, n := range neighborhood {
		sum += metric.Score(p, n)
	}
	return sum / float64(len(neighborhood))
}
