package core

import (
	"slices"

	"hyrec/internal/topk"
)

// SelectKNN implements Algorithm 1 of the paper, γ(P_u, S_u): it scores
// every candidate profile against p with the given similarity metric and
// returns the k most similar users, best first. The reference user is
// skipped if present in the candidate set. Ties break on the smaller
// UserID so the selection is deterministic.
//
// This is exactly the computation the HyRec widget performs in the browser;
// the centralized baselines reuse it server-side.
func SelectKNN(p Profile, candidates []Profile, k int, metric Similarity) []Neighbor {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	return SelectKNNInto(p, candidates, k, metric, topk.New(k), make([]Neighbor, 0, k))
}

// SelectKNNInto is SelectKNN with caller-owned storage: the collector is
// re-armed with ResetK and the neighborhood is written into dst (clobbering
// its contents, growing it only if needed). With a pooled collector and a
// reused dst the whole selection is allocation-free, which is what keeps
// the server's refresh path flat. Results are identical to SelectKNN.
func SelectKNNInto(p Profile, candidates []Profile, k int, metric Similarity, col *topk.Collector, dst []Neighbor) []Neighbor {
	dst = dst[:0]
	if k <= 0 || len(candidates) == 0 {
		return dst
	}
	col.ResetK(k)
	for _, c := range candidates {
		if c.User() == p.User() {
			continue
		}
		col.Offer(uint32(c.User()), metric.Score(p, c))
	}
	n := col.Len()
	dst = slices.Grow(dst, n)[:n]
	for i := n - 1; i >= 0; i-- {
		e := col.PopWorst()
		dst[i] = Neighbor{User: UserID(e.ID), Sim: e.Score}
	}
	return dst
}

// ViewSimilarity returns the mean similarity between p and its neighbors'
// profiles — the paper's "view similarity" metric (Section 5.1). It returns
// 0 for an empty neighborhood.
func ViewSimilarity(p Profile, neighborhood []Profile, metric Similarity) float64 {
	if len(neighborhood) == 0 {
		return 0
	}
	var sum float64
	for _, n := range neighborhood {
		sum += metric.Score(p, n)
	}
	return sum / float64(len(neighborhood))
}
