package core

import (
	"testing"
	"testing/quick"
)

func TestProfileFromSetsBasic(t *testing.T) {
	p, err := ProfileFromSets(7, []ItemID{5, 3, 5, 1}, []ItemID{9, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Liked(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("liked = %v", got)
	}
	if got := p.Disliked(); len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Fatalf("disliked = %v", got)
	}
	if p.User() != 7 {
		t.Fatalf("user = %v", p.User())
	}
}

func TestProfileFromSetsEmpty(t *testing.T) {
	p, err := ProfileFromSets(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 0 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestProfileFromSetsRejectsOverlap(t *testing.T) {
	if _, err := ProfileFromSets(1, []ItemID{1, 2, 3}, []ItemID{3, 4}); err == nil {
		t.Fatal("expected ErrInvalidSets")
	}
}

func TestProfileFromSetsCopiesInput(t *testing.T) {
	liked := []ItemID{4, 2}
	p, err := ProfileFromSets(1, liked, nil)
	if err != nil {
		t.Fatal(err)
	}
	liked[0] = 99
	if got := p.Liked(); got[0] != 2 || got[1] != 4 {
		t.Fatalf("profile aliased caller slice: %v", got)
	}
}

// Property: ProfileFromSets agrees with the incremental WithRating path.
func TestProfileFromSetsMatchesWithRating(t *testing.T) {
	prop := func(rawLiked, rawDisliked []uint8) bool {
		liked := make([]ItemID, 0, len(rawLiked))
		seen := map[ItemID]bool{}
		for _, b := range rawLiked {
			liked = append(liked, ItemID(b))
			seen[ItemID(b)] = true
		}
		disliked := make([]ItemID, 0, len(rawDisliked))
		for _, b := range rawDisliked {
			// Keep the sets disjoint: shift colliding IDs out of range.
			id := ItemID(b)
			if seen[id] {
				id += 1000
			}
			disliked = append(disliked, id)
		}

		bulk, err := ProfileFromSets(1, liked, disliked)
		if err != nil {
			return false
		}
		incr := NewProfile(1)
		for _, i := range liked {
			incr = incr.WithRating(i, true)
		}
		for _, i := range disliked {
			incr = incr.WithRating(i, false)
		}
		return bulk.Equal(incr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: normalizeIDs output is sorted, duplicate-free, and preserves
// the input as a set.
func TestNormalizeIDsProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		ids := make([]ItemID, len(raw))
		set := map[ItemID]bool{}
		for i, v := range raw {
			ids[i] = ItemID(v)
			set[ItemID(v)] = true
		}
		out := normalizeIDs(ids)
		if len(out) != len(set) {
			return false
		}
		for i, v := range out {
			if !set[v] {
				return false
			}
			if i > 0 && out[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
