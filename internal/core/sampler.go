package core

import "math/rand"

// NeighborLookup resolves the current KNN approximation of a user. The
// server's KNN table provides it; tests provide fixtures.
type NeighborLookup func(UserID) []UserID

// RandomUsers returns n users drawn (approximately) uniformly from the
// population, excluding `exclude`. The server's profile table provides it.
type RandomUsers func(rng *rand.Rand, n int, exclude UserID) []UserID

// BuildCandidateSet implements the HyRec Sampler rule (Section 3.1): the
// candidate set for u aggregates (i) u's current KNN N_u, (ii) the KNN of
// every member of N_u (the 2-hop neighborhood), and (iii) k random users.
// Duplicates and u itself are removed, so the result never exceeds
// 2k + k² entries — and shrinks as the KNN graph converges, which is what
// Figure 5 measures.
//
// The order of the result is deterministic given the inputs and rng state:
// one-hop neighbors first, then two-hop, then random picks.
func BuildCandidateSet(u UserID, k int, knn NeighborLookup, random RandomUsers, rng *rand.Rand) []UserID {
	if k <= 0 {
		return nil
	}
	return BuildCandidateSetInto(make([]UserID, 0, 2*k+k*k), make(map[UserID]struct{}, 2*k+k*k),
		u, k, knn, random, rng)
}

// BuildCandidateSetInto is BuildCandidateSet writing into caller-owned
// scratch: candidates are appended to out and dedup state goes through
// seen (cleared on entry). The zero-allocation job-assembly path
// (internal/server) pools both across calls; the output is identical to
// BuildCandidateSet given the same inputs and rng state.
func BuildCandidateSetInto(out []UserID, seen map[UserID]struct{}, u UserID, k int,
	knn NeighborLookup, random RandomUsers, rng *rand.Rand) []UserID {
	if k <= 0 {
		return out
	}
	clear(seen)
	seen[u] = struct{}{}
	add := func(v UserID) {
		if _, dup := seen[v]; dup {
			return
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}

	oneHop := knn(u)
	for _, v := range oneHop {
		add(v)
	}
	for _, v := range oneHop {
		for _, w := range knn(v) {
			add(w)
		}
	}
	for _, v := range random(rng, k, u) {
		add(v)
	}
	return out
}

// MaxCandidateSetSize returns the paper's upper bound 2k + k² on the size
// of a candidate set built with parameter k.
func MaxCandidateSetSize(k int) int { return 2*k + k*k }
