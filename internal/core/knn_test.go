package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectKNNBasic(t *testing.T) {
	ref := profileOf(1, 1, 2, 3, 4)
	candidates := []Profile{
		profileOf(2, 1, 2, 3, 4), // sim 1.0
		profileOf(3, 1, 2),       // sim 2/sqrt(8)
		profileOf(4, 9, 10),      // sim 0
		profileOf(5, 1, 2, 3),    // sim 3/sqrt(12)
	}
	got := SelectKNN(ref, candidates, 2, Cosine{})
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].User != 2 || got[1].User != 5 {
		t.Fatalf("KNN = %v, want users [2 5]", got)
	}
	if got[0].Sim != 1.0 {
		t.Errorf("best sim = %v", got[0].Sim)
	}
}

func TestSelectKNNSkipsSelf(t *testing.T) {
	ref := profileOf(1, 1, 2)
	candidates := []Profile{profileOf(1, 1, 2), profileOf(2, 1, 2)}
	got := SelectKNN(ref, candidates, 5, Cosine{})
	if len(got) != 1 || got[0].User != 2 {
		t.Fatalf("self not skipped: %v", got)
	}
}

func TestSelectKNNEdgeCases(t *testing.T) {
	ref := profileOf(1, 1)
	if got := SelectKNN(ref, nil, 3, Cosine{}); got != nil {
		t.Errorf("nil candidates → %v", got)
	}
	if got := SelectKNN(ref, []Profile{profileOf(2, 1)}, 0, Cosine{}); got != nil {
		t.Errorf("k=0 → %v", got)
	}
}

func TestSelectKNNFewerCandidatesThanK(t *testing.T) {
	ref := profileOf(1, 1, 2)
	got := SelectKNN(ref, []Profile{profileOf(2, 1)}, 10, Cosine{})
	if len(got) != 1 {
		t.Fatalf("len = %d, want 1", len(got))
	}
}

func TestSelectKNNDeterministicOnTies(t *testing.T) {
	ref := profileOf(1, 1, 2)
	// All candidates identical similarity; expect smallest IDs retained.
	var candidates []Profile
	for u := UserID(10); u >= 2; u-- {
		candidates = append(candidates, profileOf(u, 1, 2))
	}
	got := SelectKNN(ref, candidates, 3, Cosine{})
	if got[0].User != 2 || got[1].User != 3 || got[2].User != 4 {
		t.Fatalf("tie-break wrong: %v", got)
	}
}

// Property: SelectKNN agrees with the brute-force reference on random
// populations — this is the ideal-KNN equivalence the evaluation hinges on.
func TestSelectKNNMatchesBruteForceProperty(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%8) + 1
		n := 20 + rng.Intn(30)
		profiles := make([]Profile, n)
		for u := 0; u < n; u++ {
			p := NewProfile(UserID(u))
			for j := 0; j < 3+rng.Intn(10); j++ {
				p = p.WithRating(ItemID(rng.Intn(40)), true)
			}
			profiles[u] = p
		}
		ref := profiles[0]
		got := SelectKNN(ref, profiles, k, Cosine{})
		want := bruteKNN(ref, profiles, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].User != want[i].User || got[i].Sim != want[i].Sim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func bruteKNN(ref Profile, all []Profile, k int) []Neighbor {
	var ns []Neighbor
	for _, p := range all {
		if p.User() == ref.User() {
			continue
		}
		ns = append(ns, Neighbor{User: p.User(), Sim: (Cosine{}).Score(ref, p)})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Sim != ns[j].Sim {
			return ns[i].Sim > ns[j].Sim
		}
		return ns[i].User < ns[j].User
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

func TestViewSimilarity(t *testing.T) {
	ref := profileOf(1, 1, 2, 3, 4)
	hood := []Profile{
		profileOf(2, 1, 2, 3, 4), // 1.0
		profileOf(3, 9, 10),      // 0.0
	}
	got := ViewSimilarity(ref, hood, Cosine{})
	if got != 0.5 {
		t.Fatalf("ViewSimilarity = %v, want 0.5", got)
	}
	if ViewSimilarity(ref, nil, Cosine{}) != 0 {
		t.Error("empty neighborhood should be 0")
	}
}

func BenchmarkSelectKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	profiles := make([]Profile, 120) // ≈ max candidate set for k=10
	for u := range profiles {
		p := NewProfile(UserID(u + 2))
		for j := 0; j < 100; j++ {
			p = p.WithRating(ItemID(rng.Intn(1700)), true)
		}
		profiles[u] = p
	}
	ref := profiles[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectKNN(ref, profiles, 10, Cosine{})
	}
}
