package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInvalidSets reports that liked/disliked item sets passed to
// ProfileFromSets are not disjoint.
var ErrInvalidSets = errors.New("core: liked and disliked sets intersect")

// ProfileFromSets builds a profile directly from liked and disliked item
// sets, in O(n log n) instead of the O(n²) of repeated WithRating calls.
// The inputs need not be sorted; duplicates are removed. The two sets must
// be disjoint. The slices are copied, so the caller keeps ownership.
//
// Bulk constructors like this are the fast path for dataset loaders, the
// persistence layer, and the privacy perturbation mechanism, all of which
// materialise whole profiles at once.
func ProfileFromSets(u UserID, liked, disliked []ItemID) (Profile, error) {
	l := normalizeIDs(liked)
	d := normalizeIDs(disliked)
	if intersects(l, d) {
		return Profile{}, fmt.Errorf("%w: user %v", ErrInvalidSets, u)
	}
	return Profile{user: u, version: uint64(len(l) + len(d)), liked: l, disliked: d}, nil
}

// normalizeIDs returns a fresh sorted duplicate-free copy of ids.
func normalizeIDs(ids []ItemID) []ItemID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]ItemID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// intersects reports whether two sorted slices share an element.
func intersects(a, b []ItemID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
