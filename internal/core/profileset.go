package core

import (
	"errors"
	"fmt"
	"slices"
)

// ErrInvalidSets reports that liked/disliked item sets passed to
// ProfileFromSets are not disjoint.
var ErrInvalidSets = errors.New("core: liked and disliked sets intersect")

// ProfileFromSets builds a profile directly from liked and disliked item
// sets, in O(n log n) instead of the O(n²) of repeated WithRating calls.
// The inputs need not be sorted; duplicates are removed. The two sets must
// be disjoint. The slices are copied, so the caller keeps ownership.
//
// Bulk constructors like this are the fast path for dataset loaders, the
// persistence layer, and the privacy perturbation mechanism, all of which
// materialise whole profiles at once.
func ProfileFromSets(u UserID, liked, disliked []ItemID) (Profile, error) {
	l := normalizeIDs(liked)
	d := normalizeIDs(disliked)
	if intersects(l, d) {
		return Profile{}, fmt.Errorf("%w: user %v", ErrInvalidSets, u)
	}
	return Profile{user: u, version: uint64(len(l) + len(d)), liked: l, disliked: d, pk: &packCell{}}, nil
}

// ProfileFromLists builds a profile from raw ID lists in their wire form
// (possibly unsorted, possibly overlapping), with exactly the semantics
// of applying every liked rating then every disliked rating through
// WithRating: duplicates collapse, and an item on both lists ends up
// disliked (the later opinion wins). Both result sets are carved from
// one backing allocation. This is the widget's bulk path for decoding
// wire profiles — O(n log n) total instead of the O(n²) of repeated
// WithRating calls.
func ProfileFromLists(u UserID, liked, disliked []uint32) Profile {
	n := len(liked) + len(disliked)
	p := Profile{user: u, version: uint64(n), pk: &packCell{}}
	if n == 0 {
		return p
	}
	buf := make([]ItemID, n)
	l := buf[0:len(liked):len(liked)]
	d := buf[len(liked):]
	for i, x := range liked {
		l[i] = ItemID(x)
	}
	for i, x := range disliked {
		d[i] = ItemID(x)
	}
	slices.Sort(l)
	slices.Sort(d)
	d = dedupSorted(d)
	l = subtractSorted(dedupSorted(l), d)
	p.liked, p.disliked = l, d
	return p
}

// normalizeIDs returns a fresh sorted duplicate-free copy of ids.
func normalizeIDs(ids []ItemID) []ItemID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]ItemID, len(ids))
	copy(out, ids)
	slices.Sort(out)
	return dedupSorted(out)
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(ids []ItemID) []ItemID {
	if len(ids) == 0 {
		return ids
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// subtractSorted removes, in place, every element of b from a (both
// sorted, duplicate-free).
func subtractSorted(a, b []ItemID) []ItemID {
	if len(a) == 0 || len(b) == 0 {
		return a
	}
	w, j := 0, 0
	for i := 0; i < len(a); i++ {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j < len(b) && b[j] == a[i] {
			continue
		}
		a[w] = a[i]
		w++
	}
	return a[:w]
}

// intersects reports whether two sorted slices share an element.
func intersects(a, b []ItemID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
