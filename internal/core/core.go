// Package core implements the user-based collaborative-filtering primitives
// at the heart of HyRec (Boutet et al., Middleware 2014): immutable user
// profiles over binary ratings, similarity metrics, KNN selection
// (Algorithm 1, γ), item recommendation (Algorithm 2, α), the
// candidate-set sampling rule used by the server's Sampler, and the
// anonymous user/item mapping.
//
// Everything in this package is pure computation: no I/O, no clocks, no
// global state. Randomness is always injected as *rand.Rand so that replays
// and tests are deterministic.
package core

import "fmt"

// UserID identifies a user. In HyRec, user identifiers that leave the
// server are first pseudonymised by an Anonymizer.
type UserID uint32

// ItemID identifies an item (a movie, a news story, ...). Item identifiers
// in outgoing candidate sets are pseudonymised alongside user identifiers.
type ItemID uint32

// String implements fmt.Stringer.
func (u UserID) String() string { return fmt.Sprintf("u%d", uint32(u)) }

// String implements fmt.Stringer.
func (i ItemID) String() string { return fmt.Sprintf("i%d", uint32(i)) }

// Rating is one binary opinion: user u liked (or not) item i.
// The paper projects star ratings onto {liked, disliked} by comparing to
// the user's own mean (Section 5.1); dataset loaders perform that
// projection before ratings reach this package.
type Rating struct {
	User  UserID
	Item  ItemID
	Liked bool
}

// Neighbor pairs a candidate user with her similarity to a reference user.
type Neighbor struct {
	User UserID
	Sim  float64
}
