package core

import (
	"math/rand"
	"sync"
)

// Anonymizer implements HyRec's anonymous mapping (Section 3.1): user and
// item identifiers leaving the server are replaced by per-epoch pseudonyms
// so that a curious client cannot tell which user a received profile
// belongs to. Pseudonyms are reshuffled periodically by calling Advance;
// the mapping for the previous epoch remains resolvable so that in-flight
// personalization jobs can still be applied when their results return.
//
// Instead of materialising a shuffle table over the whole ID space, the
// mapping is a keyed 4-round Feistel permutation over 32-bit IDs: an O(1)
// memory bijection whose inverse runs the rounds backwards. This is a
// deliberate design decision (see DESIGN.md §5) and is property-tested for
// bijectivity.
//
// Anonymizer is safe for concurrent use.
type Anonymizer struct {
	mu    sync.RWMutex
	epoch uint64
	cur   feistelKeys
	prev  feistelKeys
	rng   *rand.Rand
}

var _ Aliaser = (*Anonymizer)(nil)

const feistelRounds = 4

type feistelKeys [feistelRounds]uint32

// NewAnonymizer returns an Anonymizer seeded deterministically; epoch 0's
// keys are drawn immediately.
func NewAnonymizer(seed int64) *Anonymizer {
	a := &Anonymizer{rng: rand.New(rand.NewSource(seed))}
	a.cur = a.drawKeys()
	a.prev = a.cur
	return a
}

func (a *Anonymizer) drawKeys() feistelKeys {
	var k feistelKeys
	for i := range k {
		k[i] = a.rng.Uint32()
	}
	return k
}

// Aliaser mints pseudonyms for one epoch. The canonical implementations
// are *Anonymizer (always the live epoch; individual calls are atomic but
// a sequence of calls may straddle an Advance) and *AliasView (a pinned
// snapshot whose Epoch and aliases are mutually consistent — what job
// assembly must use; see Anonymizer.View).
type Aliaser interface {
	// Epoch identifies the mapping the aliases belong to.
	Epoch() uint64
	// AliasUser returns the pseudonym for u.
	AliasUser(u UserID) UserID
	// AliasItem returns the pseudonym for i.
	AliasItem(i ItemID) ItemID
}

// Epoch returns the current epoch number.
func (a *Anonymizer) Epoch() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.epoch
}

// View pins the current epoch's mapping into an immutable snapshot.
// A personalization job must be assembled against a single view: reading
// Epoch and minting aliases directly on the Anonymizer can straddle a
// concurrent Advance, stamping the job with an epoch that does not match
// its pseudonyms — which would make the server resolve them to wrong (but
// plausible) identifiers when the result returns.
func (a *Anonymizer) View() *AliasView {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return &AliasView{epoch: a.epoch, keys: a.cur}
}

// AliasView is a consistent (epoch, mapping) snapshot. Immutable and safe
// for concurrent use.
type AliasView struct {
	epoch uint64
	keys  feistelKeys
}

var _ Aliaser = (*AliasView)(nil)

// Epoch implements Aliaser.
func (v *AliasView) Epoch() uint64 { return v.epoch }

// AliasUser implements Aliaser.
func (v *AliasView) AliasUser(u UserID) UserID {
	return UserID(feistelForward(uint32(u), v.keys))
}

// AliasItem implements Aliaser.
func (v *AliasView) AliasItem(i ItemID) ItemID {
	return ItemID(feistelForward(uint32(i), v.keys))
}

// IdentityAliaser sends real identifiers — the mapping used when
// anonymisation is disabled (Config.DisableAnonymizer).
type IdentityAliaser struct{}

var _ Aliaser = IdentityAliaser{}

// Epoch implements Aliaser; the identity mapping never rotates.
func (IdentityAliaser) Epoch() uint64 { return 0 }

// AliasUser implements Aliaser.
func (IdentityAliaser) AliasUser(u UserID) UserID { return u }

// AliasItem implements Aliaser.
func (IdentityAliaser) AliasItem(i ItemID) ItemID { return i }

// Advance rotates to a fresh pseudonym mapping. Jobs stamped with the
// previous epoch remain translatable; anything older is rejected.
func (a *Anonymizer) Advance() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prev = a.cur
	a.cur = a.drawKeys()
	a.epoch++
}

// AliasUser returns the pseudonym for u in the current epoch.
func (a *Anonymizer) AliasUser(u UserID) UserID {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return UserID(feistelForward(uint32(u), a.cur))
}

// AliasItem returns the pseudonym for i in the current epoch. Items share
// the permutation keys with users; the spaces are disjoint Go types so no
// confusion can arise in callers.
func (a *Anonymizer) AliasItem(i ItemID) ItemID {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return ItemID(feistelForward(uint32(i), a.cur))
}

// ResolveUser inverts a pseudonym minted in the given epoch. It returns
// false when the epoch is neither current nor the immediately preceding
// one (the job is too stale to apply safely).
func (a *Anonymizer) ResolveUser(alias UserID, epoch uint64) (UserID, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	switch epoch {
	case a.epoch:
		return UserID(feistelBackward(uint32(alias), a.cur)), true
	case a.epoch - 1:
		if a.epoch == 0 {
			return 0, false
		}
		return UserID(feistelBackward(uint32(alias), a.prev)), true
	default:
		return 0, false
	}
}

// ResolveItem inverts an item pseudonym minted in the given epoch.
func (a *Anonymizer) ResolveItem(alias ItemID, epoch uint64) (ItemID, bool) {
	u, ok := a.ResolveUser(UserID(alias), epoch)
	return ItemID(u), ok
}

// feistelForward applies the 4-round balanced Feistel network to x.
// Splitting 32 bits into two 16-bit halves with any round function yields
// a permutation of the full 32-bit space.
func feistelForward(x uint32, keys feistelKeys) uint32 {
	l, r := uint16(x>>16), uint16(x)
	for i := 0; i < feistelRounds; i++ {
		l, r = r, l^roundF(r, keys[i])
	}
	return uint32(l)<<16 | uint32(r)
}

// feistelBackward inverts feistelForward.
func feistelBackward(x uint32, keys feistelKeys) uint32 {
	l, r := uint16(x>>16), uint16(x)
	for i := feistelRounds - 1; i >= 0; i-- {
		l, r = r^roundF(l, keys[i]), l
	}
	return uint32(l)<<16 | uint32(r)
}

// roundF is a cheap nonlinear round function (xorshift-multiply mix).
func roundF(half uint16, key uint32) uint16 {
	v := uint32(half)*0x9E3779B1 ^ key
	v ^= v >> 15
	v *= 0x85EBCA77
	v ^= v >> 13
	return uint16(v)
}
