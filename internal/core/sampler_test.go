package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func fixedLookup(m map[UserID][]UserID) NeighborLookup {
	return func(u UserID) []UserID { return m[u] }
}

func sequentialRandom(pool []UserID) RandomUsers {
	return func(rng *rand.Rand, n int, exclude UserID) []UserID {
		out := make([]UserID, 0, n)
		for _, u := range pool {
			if u == exclude || len(out) == n {
				continue
			}
			out = append(out, u)
		}
		return out
	}
}

func TestBuildCandidateSetAggregatesThreeSources(t *testing.T) {
	knn := fixedLookup(map[UserID][]UserID{
		1: {2, 3},
		2: {4},
		3: {5},
	})
	random := sequentialRandom([]UserID{6, 7})
	got := BuildCandidateSet(1, 2, knn, random, rand.New(rand.NewSource(1)))
	want := []UserID{2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBuildCandidateSetExcludesSelfAndDuplicates(t *testing.T) {
	knn := fixedLookup(map[UserID][]UserID{
		1: {2, 3},
		2: {1, 3}, // self and duplicate
		3: {2},    // duplicate
	})
	random := sequentialRandom([]UserID{2, 1, 9})
	got := BuildCandidateSet(1, 2, knn, random, rand.New(rand.NewSource(1)))
	seen := map[UserID]bool{}
	for _, u := range got {
		if u == 1 {
			t.Fatal("candidate set contains the user herself")
		}
		if seen[u] {
			t.Fatalf("duplicate %v in %v", u, got)
		}
		seen[u] = true
	}
	if !seen[9] {
		t.Error("random pick missing")
	}
}

func TestBuildCandidateSetEmptyKNN(t *testing.T) {
	// A brand-new user has no neighbors: the set is purely random picks —
	// this is how cold users bootstrap (Section 5.3 discussion).
	knn := fixedLookup(nil)
	random := sequentialRandom([]UserID{5, 6, 7})
	got := BuildCandidateSet(1, 3, knn, random, rand.New(rand.NewSource(1)))
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestBuildCandidateSetZeroK(t *testing.T) {
	if got := BuildCandidateSet(1, 0, fixedLookup(nil), sequentialRandom(nil), rand.New(rand.NewSource(1))); got != nil {
		t.Fatalf("k=0 → %v", got)
	}
}

func TestMaxCandidateSetSize(t *testing.T) {
	if MaxCandidateSetSize(10) != 120 {
		t.Fatalf("bound(10) = %d", MaxCandidateSetSize(10))
	}
}

// Property: |S_u| ≤ 2k + k², u ∉ S_u, no duplicates — the paper's stated
// bound (Section 3.1).
func TestCandidateSetBoundProperty(t *testing.T) {
	prop := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%15) + 1
		n := int(nRaw)%100 + k + 2
		// Random KNN graph over n users.
		table := make(map[UserID][]UserID, n)
		users := make([]UserID, n)
		for i := 0; i < n; i++ {
			users[i] = UserID(i)
		}
		for i := 0; i < n; i++ {
			var hood []UserID
			for j := 0; j < k; j++ {
				hood = append(hood, UserID(rng.Intn(n)))
			}
			table[UserID(i)] = hood
		}
		random := func(r *rand.Rand, m int, exclude UserID) []UserID {
			out := make([]UserID, 0, m)
			for len(out) < m {
				u := UserID(r.Intn(n))
				if u != exclude {
					out = append(out, u)
				}
			}
			return out
		}
		got := BuildCandidateSet(3, k, fixedLookup(table), random, rng)
		if len(got) > MaxCandidateSetSize(k) {
			return false
		}
		seen := map[UserID]bool{}
		for _, u := range got {
			if u == 3 || seen[u] {
				return false
			}
			seen[u] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
