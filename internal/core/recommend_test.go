package core

import (
	"math/rand"
	"testing"
)

func TestRecommendBasic(t *testing.T) {
	ref := profileOf(1, 100) // has seen item 100
	candidates := []Profile{
		profileOf(2, 100, 1, 2),
		profileOf(3, 1, 2, 3),
		profileOf(4, 2),
	}
	// Popularity among unseen: 1→2, 2→3, 3→1; 100 excluded (seen).
	got := Recommend(ref, candidates, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("Recommend = %v, want [2 1]", got)
	}
}

func TestRecommendExcludesAllExposed(t *testing.T) {
	// Disliked items must also be excluded: the user has been exposed.
	ref := NewProfile(1).WithRating(5, false)
	candidates := []Profile{profileOf(2, 5), profileOf(3, 5), profileOf(4, 6)}
	got := Recommend(ref, candidates, 5)
	for _, item := range got {
		if item == 5 {
			t.Fatal("recommended an exposed (disliked) item")
		}
	}
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("Recommend = %v, want [6]", got)
	}
}

func TestRecommendSkipsSelfProfile(t *testing.T) {
	ref := profileOf(1, 1)
	// The candidate set can include the user herself; her own items must
	// not count as popularity votes.
	candidates := []Profile{profileOf(1, 42), profileOf(2, 7)}
	got := Recommend(ref, candidates, 5)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("Recommend = %v, want [7]", got)
	}
}

func TestRecommendTieBreakDeterministic(t *testing.T) {
	ref := NewProfile(1)
	candidates := []Profile{profileOf(2, 9, 4), profileOf(3, 9, 4)}
	got := Recommend(ref, candidates, 2)
	if got[0] != 4 || got[1] != 9 {
		t.Fatalf("tie-break = %v, want [4 9]", got)
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	ref := profileOf(1, 1)
	if got := Recommend(ref, nil, 5); len(got) != 0 {
		t.Errorf("no candidates → %v", got)
	}
	if got := Recommend(ref, []Profile{profileOf(2, 3)}, 0); got != nil {
		t.Errorf("r=0 → %v", got)
	}
	// All candidate items already seen.
	got := Recommend(profileOf(1, 3), []Profile{profileOf(2, 3)}, 5)
	if len(got) != 0 {
		t.Errorf("all-seen → %v", got)
	}
}

func TestCountUnseen(t *testing.T) {
	ref := profileOf(1, 1)
	candidates := []Profile{profileOf(2, 1, 2), profileOf(3, 2, 3)}
	counts := CountUnseen(ref, candidates)
	if counts[1] != 0 || counts[2] != 2 || counts[3] != 1 {
		t.Fatalf("CountUnseen = %v", counts)
	}
	if _, seen := counts[1]; seen {
		t.Error("seen item present in popularity map")
	}
}

func BenchmarkRecommend(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	candidates := make([]Profile, 120)
	for u := range candidates {
		p := NewProfile(UserID(u + 2))
		for j := 0; j < 100; j++ {
			p = p.WithRating(ItemID(rng.Intn(1700)), true)
		}
		candidates[u] = p
	}
	ref := NewProfile(1)
	for j := 0; j < 100; j++ {
		ref = ref.WithRating(ItemID(rng.Intn(1700)), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Recommend(ref, candidates, 10)
	}
}
