package core

import (
	"math"
	"testing"
	"testing/quick"
)

func signedProfile(t *testing.T, u UserID, liked, disliked []ItemID) Profile {
	t.Helper()
	p, err := ProfileFromSets(u, liked, disliked)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSignedCosineAgreement(t *testing.T) {
	a := signedProfile(t, 1, []ItemID{1, 2}, []ItemID{9})
	b := signedProfile(t, 2, []ItemID{1, 2}, []ItemID{9})
	if got := (SignedCosine{}).Score(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical signed profiles: score = %v, want 1", got)
	}
}

func TestSignedCosineOppositeOpinions(t *testing.T) {
	a := signedProfile(t, 1, []ItemID{1, 2}, nil)
	b := signedProfile(t, 2, nil, []ItemID{1, 2})
	if got := (SignedCosine{}).Score(a, b); math.Abs(got+1) > 1e-12 {
		t.Fatalf("opposite profiles: score = %v, want -1", got)
	}
}

func TestSignedCosineSharedDislikesCount(t *testing.T) {
	// Two users who only share dislikes are similar under SignedCosine
	// and invisible to plain Cosine.
	a := signedProfile(t, 1, []ItemID{1}, []ItemID{50, 51})
	b := signedProfile(t, 2, []ItemID{2}, []ItemID{50, 51})
	signed := (SignedCosine{}).Score(a, b)
	plain := (Cosine{}).Score(a, b)
	if plain != 0 {
		t.Fatalf("cosine saw dislikes: %v", plain)
	}
	if signed <= 0 {
		t.Fatalf("signed cosine ignored shared dislikes: %v", signed)
	}
}

func TestSignedCosineReducesToCosineWithoutDislikes(t *testing.T) {
	prop := func(rawA, rawB []uint8) bool {
		la := make([]ItemID, 0, len(rawA))
		for _, v := range rawA {
			la = append(la, ItemID(v))
		}
		lb := make([]ItemID, 0, len(rawB))
		for _, v := range rawB {
			lb = append(lb, ItemID(v))
		}
		a, err := ProfileFromSets(1, la, nil)
		if err != nil {
			return false
		}
		b, err := ProfileFromSets(2, lb, nil)
		if err != nil {
			return false
		}
		return math.Abs((SignedCosine{}).Score(a, b)-(Cosine{}).Score(a, b)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Properties: symmetry and range.
func TestSignedCosineSymmetricAndBounded(t *testing.T) {
	prop := func(rawLa, rawDa, rawLb, rawDb []uint8) bool {
		mk := func(u UserID, rawL, rawD []uint8) (Profile, bool) {
			seen := map[ItemID]bool{}
			var liked, disliked []ItemID
			for _, v := range rawL {
				id := ItemID(v)
				if !seen[id] {
					seen[id] = true
					liked = append(liked, id)
				}
			}
			for _, v := range rawD {
				id := ItemID(v)
				if !seen[id] {
					seen[id] = true
					disliked = append(disliked, id)
				}
			}
			p, err := ProfileFromSets(u, liked, disliked)
			return p, err == nil
		}
		a, ok := mk(1, rawLa, rawDa)
		if !ok {
			return false
		}
		b, ok := mk(2, rawLb, rawDb)
		if !ok {
			return false
		}
		s := SignedCosine{}
		ab, ba := s.Score(a, b), s.Score(b, a)
		return ab == ba && ab >= -1-1e-9 && ab <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedCosineEmptyProfiles(t *testing.T) {
	empty := NewProfile(1)
	full := signedProfile(t, 2, []ItemID{1}, nil)
	if got := (SignedCosine{}).Score(empty, full); got != 0 {
		t.Fatalf("empty profile score = %v", got)
	}
}
