package core

import (
	"math/bits"
	"sync/atomic"
)

// This file implements the blocked-bitmap similarity kernel: a packed
// representation of a profile's sorted item sets as aligned 64-item
// blocks, so set intersections — the inner loop of every Similarity
// metric — become word-AND + popcount instead of an element-by-element
// merge. The packed form is derived data: it is keyed to the exact
// Profile snapshot it was built from, cached in a cell shared down the
// profile's update lineage, and rebuilt lazily whenever the cached
// snapshot no longer matches. Counts produced by the packed kernels are
// exactly the integers the merge/galloping reference produces
// (FuzzSimilarityKernelEquivalence pins this), so similarity scores —
// and therefore recommendation payloads — are byte-identical whichever
// path runs.

// packedBlock is one aligned 64-item span of the ItemID space: key is
// item>>6, and bit b of each word records the opinion on item key<<6|b.
// Blocks are sorted by key and never empty (at least one bit set across
// the two words).
type packedBlock struct {
	key      uint32
	liked    uint64
	disliked uint64
}

// packedProfile is the packed twin of one Profile snapshot. It is
// immutable after construction. liked/disliked alias the snapshot's own
// backing arrays: since profile sets are never mutated, pointer + length
// identity of those arrays identifies the snapshot's content exactly —
// and retaining them here rules out ABA reuse of a freed array's
// address. Version numbers alone would not do: two WithRating siblings
// of one parent share a cell and both carry version+1.
type packedProfile struct {
	liked    []ItemID
	disliked []ItemID
	blocks   []packedBlock
}

// matches reports whether pp encodes exactly p's item sets.
func (pp *packedProfile) matches(p Profile) bool {
	return sameIDs(pp.liked, p.liked) && sameIDs(pp.disliked, p.disliked)
}

// sameIDs is slice identity (not content equality): same length and same
// backing array. Immutability makes identity imply content equality.
func sameIDs(a, b []ItemID) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// packCell is the per-lineage cache slot for the packed form. The cell
// is shared between a profile and its WithRating descendants, so a
// refresh scoring the latest snapshot reuses (or incrementally updates)
// the pack built for its ancestors instead of rebuilding from scratch.
// Stores race benignly: the pack is derived data checked against the
// snapshot in hand, so the worst outcome of a lost store is one extra
// rebuild.
type packCell struct {
	v atomic.Pointer[packedProfile]
}

// packMinSize is the packing break-even: profiles with fewer total
// items score through the merge/galloping fallback (IntersectCount),
// which beats pack construction + block walk at these sizes. Both paths
// produce identical counts, so the gate is purely a cost decision.
// Tuned against BenchmarkIntersect / BenchmarkSimilarityKernel.
const packMinSize = 8

// packed returns the cached packed form of p, building and caching it
// on miss. It returns nil — meaning "use the merge fallback" — for
// profiles below the packing break-even or outside any cache lineage
// (zero-value profiles).
func (p Profile) packed() *packedProfile {
	c := p.pk
	if c == nil || len(p.liked)+len(p.disliked) < packMinSize {
		return nil
	}
	if pp := c.v.Load(); pp != nil && pp.matches(p) {
		return pp
	}
	pp := buildPacked(p)
	c.v.Store(pp)
	return pp
}

// buildPacked constructs the packed form of p from its sorted sets: a
// two-pass merge (count distinct keys, then fill) so the block slice is
// allocated exactly once at exact size.
func buildPacked(p Profile) *packedProfile {
	l, d := p.liked, p.disliked
	n := 0
	const noKey = uint32(1) << 31 // keys are ItemID>>6 < 1<<26
	prev := noKey
	i, j := 0, 0
	for i < len(l) || j < len(d) {
		var k uint32
		if j >= len(d) || (i < len(l) && l[i] <= d[j]) {
			k = uint32(l[i]) >> 6
			i++
		} else {
			k = uint32(d[j]) >> 6
			j++
		}
		if k != prev {
			n++
			prev = k
		}
	}
	blocks := make([]packedBlock, n)
	w := -1
	prev = noKey
	i, j = 0, 0
	for i < len(l) || j < len(d) {
		var id ItemID
		var liked bool
		if j >= len(d) || (i < len(l) && l[i] <= d[j]) {
			id, liked = l[i], true
			i++
		} else {
			id, liked = d[j], false
			j++
		}
		k := uint32(id) >> 6
		if k != prev {
			w++
			blocks[w].key = k
			prev = k
		}
		bit := uint64(1) << (uint32(id) & 63)
		if liked {
			blocks[w].liked |= bit
		} else {
			blocks[w].disliked |= bit
		}
	}
	return &packedProfile{liked: l, disliked: d, blocks: blocks}
}

// withRating is the incremental maintenance step behind WithRating: the
// parent snapshot's pack plus one opinion (i, liked), re-keyed to the
// child's sets. Copy-on-write of the block slice with the one touched
// block modified (or inserted), in a single allocation — the packed
// analogue of WithRating's single-backing-allocation discipline. The
// result is exactly buildPacked of the child profile
// (TestPackedIncrementalMatchesRebuild pins this).
func (pp *packedProfile) withRating(i ItemID, liked bool, nextLiked, nextDisliked []ItemID) *packedProfile {
	key := uint32(i) >> 6
	bit := uint64(1) << (uint32(i) & 63)
	old := pp.blocks
	// Binary search for the touched block.
	lo, hi := 0, len(old)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if old[mid].key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	next := &packedProfile{liked: nextLiked, disliked: nextDisliked}
	if lo < len(old) && old[lo].key == key {
		blocks := make([]packedBlock, len(old))
		copy(blocks, old)
		b := &blocks[lo]
		if liked {
			b.liked |= bit
			b.disliked &^= bit
		} else {
			b.disliked |= bit
			b.liked &^= bit
		}
		next.blocks = blocks
		return next
	}
	blocks := make([]packedBlock, len(old)+1)
	copy(blocks, old[:lo])
	copy(blocks[lo+1:], old[lo:])
	if liked {
		blocks[lo] = packedBlock{key: key, liked: bit}
	} else {
		blocks[lo] = packedBlock{key: key, disliked: bit}
	}
	next.blocks = blocks
	return next
}

// intersectLiked returns |L(a) ∩ L(b)| by walking the aligned blocks of
// both packs and popcounting word ANDs — the fast path behind Cosine,
// Jaccard and Overlap.
func (a *packedProfile) intersectLiked(b *packedProfile) int {
	ab, bb := a.blocks, b.blocks
	count, i, j := 0, 0, 0
	for i < len(ab) && j < len(bb) {
		ka, kb := ab[i].key, bb[j].key
		switch {
		case ka == kb:
			count += bits.OnesCount64(ab[i].liked & bb[j].liked)
			i++
			j++
		case ka < kb:
			i++
		default:
			j++
		}
	}
	return count
}

// signedCounts returns (|L∩L| + |D∩D|, |L∩D| + |D∩L|) in a single block
// walk — SignedCosine's agree/clash terms, which the merge reference
// needs four separate intersections for.
func (a *packedProfile) signedCounts(b *packedProfile) (agree, clash int) {
	ab, bb := a.blocks, b.blocks
	i, j := 0, 0
	for i < len(ab) && j < len(bb) {
		ka, kb := ab[i].key, bb[j].key
		switch {
		case ka == kb:
			al, ad := ab[i].liked, ab[i].disliked
			bl, bd := bb[j].liked, bb[j].disliked
			agree += bits.OnesCount64(al&bl) + bits.OnesCount64(ad&bd)
			clash += bits.OnesCount64(al&bd) + bits.OnesCount64(ad&bl)
			i++
			j++
		case ka < kb:
			i++
		default:
			j++
		}
	}
	return agree, clash
}

// likedIntersect is the kernel dispatch for the liked-set metrics: the
// packed block walk when both profiles have (or can cheaply build) a
// pack, the merge/galloping reference otherwise. Both paths return the
// same integer, so callers never observe which one ran.
func likedIntersect(a, b Profile) int {
	if pa := a.packed(); pa != nil {
		if pb := b.packed(); pb != nil {
			return pa.intersectLiked(pb)
		}
	}
	return IntersectCount(a.liked, b.liked)
}

// signedIntersect is likedIntersect's twin for SignedCosine: one block
// walk on the packed path versus four merges on the fallback.
func signedIntersect(a, b Profile) (agree, clash int) {
	if pa := a.packed(); pa != nil {
		if pb := b.packed(); pb != nil {
			return pa.signedCounts(pb)
		}
	}
	agree = IntersectCount(a.liked, b.liked) + IntersectCount(a.disliked, b.disliked)
	clash = IntersectCount(a.liked, b.disliked) + IntersectCount(a.disliked, b.liked)
	return agree, clash
}
