package core

import (
	"slices"

	"hyrec/internal/topk"
)

// Recommend implements Algorithm 2 of the paper, α(S_u, P_u): it counts,
// over the candidate profiles, the popularity of every liked item the
// reference user has not been exposed to, and returns the r most popular,
// most popular first. Ties break on the smaller ItemID for determinism.
//
// The HyRec widget runs this in the browser; the CRec baseline runs the
// identical code on the front-end server, which is precisely the cost
// HyRec offloads (Figures 8 and 9).
func Recommend(p Profile, candidates []Profile, r int) []ItemID {
	if r <= 0 {
		return nil
	}
	return TopItems(CountUnseen(p, candidates), r)
}

// RecommendInto is Recommend with caller-owned storage: the popularity
// tally map, the collector, and the result slice are all reused across
// calls. With pooled scratch the whole of Algorithm 2 runs without
// allocating. Results are identical to Recommend.
func RecommendInto(p Profile, candidates []Profile, r int, col *topk.Collector, popularity map[ItemID]int, dst []ItemID) []ItemID {
	dst = dst[:0]
	if r <= 0 {
		return dst
	}
	return TopItemsInto(CountUnseenInto(p, candidates, popularity), r, col, dst)
}

// TopItems returns the r most popular items from a popularity tally, most
// popular first, ties broken on the smaller ItemID. Exposed so callers
// that assemble tallies differently (parallel widgets, DP-corrected
// estimators) share the exact selection semantics of Algorithm 2.
func TopItems(popularity map[ItemID]int, r int) []ItemID {
	if r <= 0 || len(popularity) == 0 {
		return nil
	}
	return TopItemsInto(popularity, r, topk.New(r), make([]ItemID, 0, r))
}

// TopItemsInto is TopItems with a caller-owned collector and result slice;
// dst is clobbered and grown only if needed. Results are identical to
// TopItems.
func TopItemsInto(popularity map[ItemID]int, r int, col *topk.Collector, dst []ItemID) []ItemID {
	dst = dst[:0]
	if r <= 0 || len(popularity) == 0 {
		return dst
	}
	col.ResetK(r)
	for item, count := range popularity {
		col.Offer(uint32(item), float64(count))
	}
	n := col.Len()
	dst = slices.Grow(dst, n)[:n]
	for i := n - 1; i >= 0; i-- {
		dst[i] = ItemID(col.PopWorst().ID)
	}
	return dst
}

// CountUnseen tallies how many candidate profiles like each item that the
// reference user has not rated. Exposed as a building block for custom
// recommendation policies (Table 1: setRecommendedItems()).
func CountUnseen(p Profile, candidates []Profile) map[ItemID]int {
	return CountUnseenInto(p, candidates, make(map[ItemID]int, 64))
}

// CountUnseenInto is CountUnseen tallying into a caller-owned map, which
// is cleared first (Go's clear is a memclr on maps — no rehash, no
// allocation). Pass nil to allocate a fresh map.
func CountUnseenInto(p Profile, candidates []Profile, popularity map[ItemID]int) map[ItemID]int {
	if popularity == nil {
		popularity = make(map[ItemID]int, 64)
	} else {
		clear(popularity)
	}
	for _, c := range candidates {
		if c.User() == p.User() {
			continue
		}
		for _, item := range c.Liked() {
			if !p.Contains(item) {
				popularity[item]++
			}
		}
	}
	return popularity
}
