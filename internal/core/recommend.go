package core

import "hyrec/internal/topk"

// Recommend implements Algorithm 2 of the paper, α(S_u, P_u): it counts,
// over the candidate profiles, the popularity of every liked item the
// reference user has not been exposed to, and returns the r most popular,
// most popular first. Ties break on the smaller ItemID for determinism.
//
// The HyRec widget runs this in the browser; the CRec baseline runs the
// identical code on the front-end server, which is precisely the cost
// HyRec offloads (Figures 8 and 9).
func Recommend(p Profile, candidates []Profile, r int) []ItemID {
	if r <= 0 {
		return nil
	}
	return TopItems(CountUnseen(p, candidates), r)
}

// TopItems returns the r most popular items from a popularity tally, most
// popular first, ties broken on the smaller ItemID. Exposed so callers
// that assemble tallies differently (parallel widgets, DP-corrected
// estimators) share the exact selection semantics of Algorithm 2.
func TopItems(popularity map[ItemID]int, r int) []ItemID {
	if r <= 0 || len(popularity) == 0 {
		return nil
	}
	col := topk.New(r)
	for item, count := range popularity {
		col.Offer(uint32(item), float64(count))
	}
	entries := col.Sorted()
	out := make([]ItemID, len(entries))
	for i, e := range entries {
		out[i] = ItemID(e.ID)
	}
	return out
}

// CountUnseen tallies how many candidate profiles like each item that the
// reference user has not rated. Exposed as a building block for custom
// recommendation policies (Table 1: setRecommendedItems()).
func CountUnseen(p Profile, candidates []Profile) map[ItemID]int {
	popularity := make(map[ItemID]int, 64)
	for _, c := range candidates {
		if c.User() == p.User() {
			continue
		}
		for _, item := range c.Liked() {
			if !p.Contains(item) {
				popularity[item]++
			}
		}
	}
	return popularity
}
