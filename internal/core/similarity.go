package core

import "math"

// Similarity scores how close two user profiles are. HyRec's widget ships
// cosine similarity by default but the metric is a customization point
// (Table 1 of the paper: setSimilarity()); anything implementing this
// interface can be plugged into KNN selection.
type Similarity interface {
	// Score returns the similarity between two profiles. Larger is more
	// similar. Implementations must be symmetric and deterministic.
	Score(a, b Profile) float64
	// Name returns a short identifier used in logs and benchmark tables.
	Name() string
}

// Cosine is the binary cosine similarity used throughout the paper:
// |L(a) ∩ L(b)| / sqrt(|L(a)|·|L(b)|) over the liked sets.
type Cosine struct{}

var _ Similarity = Cosine{}

// Score implements Similarity.
func (Cosine) Score(a, b Profile) float64 {
	na, nb := len(a.liked), len(b.liked)
	if na == 0 || nb == 0 {
		return 0
	}
	inter := likedIntersect(a, b)
	if inter == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(na)*float64(nb))
}

// Name implements Similarity.
func (Cosine) Name() string { return "cosine" }

// Jaccard is |L(a) ∩ L(b)| / |L(a) ∪ L(b)|, provided as an alternative
// metric demonstrating the customization interface.
type Jaccard struct{}

var _ Similarity = Jaccard{}

// Score implements Similarity.
func (Jaccard) Score(a, b Profile) float64 {
	na, nb := len(a.liked), len(b.liked)
	if na == 0 || nb == 0 {
		return 0
	}
	inter := likedIntersect(a, b)
	union := na + nb - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Name implements Similarity.
func (Jaccard) Name() string { return "jaccard" }

// SignedCosine extends the binary cosine to signed opinions, the
// "non-binary case" hook of Section 2.1: profiles are ±1 vectors (liked
// = +1, disliked = −1, unrated = 0) and the score is their cosine,
//
//	(|L_a∩L_b| + |D_a∩D_b| − |L_a∩D_b| − |D_a∩L_b|) / √(‖a‖·‖b‖)
//
// so shared dislikes count as agreement and opposite opinions as
// disagreement. It reduces exactly to Cosine when neither profile has
// dislikes. Scores lie in [−1, 1].
type SignedCosine struct{}

var _ Similarity = SignedCosine{}

// Score implements Similarity.
func (SignedCosine) Score(a, b Profile) float64 {
	na := len(a.liked) + len(a.disliked)
	nb := len(b.liked) + len(b.disliked)
	if na == 0 || nb == 0 {
		return 0
	}
	agree, clash := signedIntersect(a, b)
	if agree == 0 && clash == 0 {
		return 0
	}
	return float64(agree-clash) / math.Sqrt(float64(na)*float64(nb))
}

// Name implements Similarity.
func (SignedCosine) Name() string { return "signed-cosine" }

// Overlap is the raw intersection size |L(a) ∩ L(b)|; cheap, un-normalised,
// useful as a recall-oriented baseline in ablations.
type Overlap struct{}

var _ Similarity = Overlap{}

// Score implements Similarity.
func (Overlap) Score(a, b Profile) float64 {
	return float64(likedIntersect(a, b))
}

// Name implements Similarity.
func (Overlap) Name() string { return "overlap" }
