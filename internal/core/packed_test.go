package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------------
// Reference implementations. intersectMergeRef is the plain element-by-element
// merge with no galloping and no packing — the ground truth both the blocked
// kernel and the galloping path must reproduce exactly.
// ---------------------------------------------------------------------------

func intersectMergeRef(a, b []ItemID) int {
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			count++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return count
}

// refScore recomputes each metric from intersectMergeRef counts. The packed
// kernel feeds the same integers into the same float expressions, so exact
// (==) float equality must hold.
func refScore(name string, a, b Profile) float64 {
	switch name {
	case "cosine":
		na, nb := len(a.liked), len(b.liked)
		if na == 0 || nb == 0 {
			return 0
		}
		inter := intersectMergeRef(a.liked, b.liked)
		if inter == 0 {
			return 0
		}
		return float64(inter) / math.Sqrt(float64(na)*float64(nb))
	case "jaccard":
		na, nb := len(a.liked), len(b.liked)
		if na == 0 || nb == 0 {
			return 0
		}
		inter := intersectMergeRef(a.liked, b.liked)
		union := na + nb - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	case "signed-cosine":
		na := len(a.liked) + len(a.disliked)
		nb := len(b.liked) + len(b.disliked)
		if na == 0 || nb == 0 {
			return 0
		}
		agree := intersectMergeRef(a.liked, b.liked) + intersectMergeRef(a.disliked, b.disliked)
		clash := intersectMergeRef(a.liked, b.disliked) + intersectMergeRef(a.disliked, b.liked)
		if agree == 0 && clash == 0 {
			return 0
		}
		return float64(agree-clash) / math.Sqrt(float64(na)*float64(nb))
	case "overlap":
		return float64(intersectMergeRef(a.liked, b.liked))
	}
	panic("unknown metric " + name)
}

// unpackSets expands a packed profile back into sorted item sets, validating
// the block structure end to end.
func unpackSets(pp *packedProfile) (liked, disliked []ItemID) {
	for _, b := range pp.blocks {
		base := ItemID(b.key) << 6
		for m := b.liked; m != 0; m &= m - 1 {
			liked = append(liked, base+ItemID(bits.TrailingZeros64(m)))
		}
		for m := b.disliked; m != 0; m &= m - 1 {
			disliked = append(disliked, base+ItemID(bits.TrailingZeros64(m)))
		}
	}
	return liked, disliked
}

func equalBlocks(a, b []packedBlock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Differential fuzzer: packed kernel vs merge reference vs galloping path,
// across all four metrics, plus incremental WithRating maintenance.
// ---------------------------------------------------------------------------

// fuzzProfiles decodes fuzz input into two profiles. Byte 0/1 control ID
// spread (small spread → dense blocks sharing 64-item spans; large spread →
// sparse, one item per block), bytes 2/3 the liked/disliked split (small
// values → dislike-heavy profiles). The remaining bytes become item walks:
// clustered increments approximate the power-law neighbourhood overlap of
// real rating data.
func fuzzProfiles(data []byte) (a, b Profile, ok bool) {
	if len(data) < 5 {
		return Profile{}, Profile{}, false
	}
	if len(data) > 4096 {
		data = data[:4096]
	}
	spreadA := int(data[0])%64 + 1
	spreadB := int(data[1])%64 + 1
	rest := data[4:]
	half := len(rest) / 2
	segA, segB := rest[:half], rest[half:]

	walk := func(seg []byte, spread int) []uint32 {
		ids := make([]uint32, 0, len(seg))
		id := uint32(0)
		for _, c := range seg {
			id += 1 + uint32(int(c)%spread)
			ids = append(ids, id)
		}
		return ids
	}
	split := func(ids []uint32, frac byte) (liked, disliked []uint32) {
		cut := len(ids) * int(frac) / 256
		return ids[:cut], ids[cut:]
	}

	al, ad := split(walk(segA, spreadA), data[2])
	bl, bd := split(walk(segB, spreadB), data[3])
	return ProfileFromLists(1, al, ad), ProfileFromLists(2, bl, bd), true
}

// FuzzSimilarityKernelEquivalence pins the central claim of the blocked
// kernel: every count and every metric score is bit-identical between the
// packed popcount path, the galloping path, and the plain merge reference.
// It also pins WithRating's incremental pack maintenance against a full
// rebuild. Seed corpus under testdata/fuzz covers dislike-heavy, dense,
// sparse and empty-set shapes.
func FuzzSimilarityKernelEquivalence(f *testing.F) {
	f.Add([]byte{3, 3, 128, 128, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{1, 1, 20, 20, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}) // dislike-heavy, dense
	f.Add([]byte{63, 5, 255, 0, 200, 100, 50, 25, 12, 6, 3, 1, 0, 0, 0, 0, 7, 7})     // sparse vs dense, all-liked vs all-disliked
	f.Add([]byte{10, 10, 0, 255, 1, 1})                                               // tiny, below packMinSize
	f.Add([]byte{2, 40, 77, 180, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 128, 64, 32, 16, 8, 4, 2, 1, 100, 100, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := fuzzProfiles(data)
		if !ok {
			return
		}

		// Counts: packed block walk vs merge reference vs galloping.
		pa, pb := buildPacked(a), buildPacked(b)
		want := intersectMergeRef(a.liked, b.liked)
		if got := pa.intersectLiked(pb); got != want {
			t.Fatalf("packed intersect = %d, merge reference = %d", got, want)
		}
		if got := pb.intersectLiked(pa); got != want {
			t.Fatalf("packed intersect not symmetric: %d vs %d", got, want)
		}
		if got := IntersectCount(a.liked, b.liked); got != want {
			t.Fatalf("IntersectCount (galloping) = %d, merge reference = %d", got, want)
		}
		wantAgree := intersectMergeRef(a.liked, b.liked) + intersectMergeRef(a.disliked, b.disliked)
		wantClash := intersectMergeRef(a.liked, b.disliked) + intersectMergeRef(a.disliked, b.liked)
		if agree, clash := pa.signedCounts(pb); agree != wantAgree || clash != wantClash {
			t.Fatalf("packed signedCounts = (%d,%d), reference = (%d,%d)", agree, clash, wantAgree, wantClash)
		}

		// Block structure round-trips to the exact source sets.
		gotL, gotD := unpackSets(pa)
		if !equalIDs(gotL, a.liked) || !equalIDs(gotD, a.disliked) {
			t.Fatalf("unpack(buildPacked(a)) != a: %v/%v vs %v/%v", gotL, gotD, a.liked, a.disliked)
		}

		// Metric dispatch: scores identical (==) whichever kernel runs, and
		// symmetric.
		for _, m := range []Similarity{Cosine{}, Jaccard{}, SignedCosine{}, Overlap{}} {
			got := m.Score(a, b)
			if want := refScore(m.Name(), a, b); got != want {
				t.Fatalf("%s.Score = %v, reference = %v", m.Name(), got, want)
			}
			if rev := m.Score(b, a); rev != got {
				t.Fatalf("%s.Score not symmetric: %v vs %v", m.Name(), got, rev)
			}
		}

		// Incremental maintenance: prime a's pack, apply one more rating,
		// and the lineage cell must hold exactly buildPacked of the child.
		extra := ItemID(data[len(data)-1]) * ItemID(int(data[0])%7+1)
		liked := data[len(data)-1]&1 == 0
		a.pk.v.Store(pa)
		child := a.WithRating(extra, liked)
		pp := child.pk.v.Load()
		if pp == nil || !pp.matches(child) {
			t.Fatalf("incremental pack maintenance did not fire for child snapshot")
		}
		if rebuilt := buildPacked(child); !equalBlocks(pp.blocks, rebuilt.blocks) {
			t.Fatalf("incremental pack != rebuild after WithRating(%d, %v)", extra, liked)
		}
	})
}

// TestPackedIncrementalMatchesRebuild drives long random WithRating
// sequences — dislike-heavy, with re-ratings and polarity flips — and
// asserts after every step that the incrementally maintained pack equals a
// from-scratch rebuild and that packed-path scores equal the merge
// reference.
func TestPackedIncrementalMatchesRebuild(t *testing.T) {
	metrics := []Similarity{Cosine{}, Jaccard{}, SignedCosine{}, Overlap{}}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := NewProfile(7)
		q := NewProfile(9) // scoring partner, rebuilt independently
		for i := 0; i < 200; i++ {
			q = q.WithRating(ItemID(rng.Intn(400)), rng.Intn(10) < 5)
		}
		// Prime the lineage cell so WithRating's incremental path is live
		// from the first step.
		p.pk.v.Store(buildPacked(p))
		for step := 0; step < 300; step++ {
			item := ItemID(rng.Intn(400))
			liked := rng.Intn(10) >= 7 // dislike-heavy
			p = p.WithRating(item, liked)

			pp := p.pk.v.Load()
			if pp == nil || !pp.matches(p) {
				t.Fatalf("seed %d step %d: pack not maintained incrementally", seed, step)
			}
			rebuilt := buildPacked(p)
			if !equalBlocks(pp.blocks, rebuilt.blocks) {
				t.Fatalf("seed %d step %d: incremental pack diverged from rebuild after (%d,%v)", seed, step, item, liked)
			}
			if step%17 == 0 {
				for _, m := range metrics {
					if got, want := m.Score(p, q), refScore(m.Name(), p, q); got != want {
						t.Fatalf("seed %d step %d: %s = %v, reference = %v", seed, step, m.Name(), got, want)
					}
				}
			}
		}
	}
}

// TestPackedCacheKeying pins the identity-keyed cache against the sibling
// hazard: two WithRating children forked from one parent share the lineage
// cell and the same version number, so a version-keyed cache would serve one
// sibling the other's pack. The identity key must keep them straight.
func TestPackedCacheKeying(t *testing.T) {
	parent := NewProfile(1)
	for i := 0; i < 32; i++ {
		parent = parent.WithRating(ItemID(i*3), i%4 != 0)
	}
	s1 := parent.WithRating(1000, true)
	s2 := parent.WithRating(2000, false) // same version as s1, different content

	other := NewProfile(2)
	for i := 0; i < 32; i++ {
		other = other.WithRating(ItemID(i*3), true)
	}

	for _, m := range []Similarity{Cosine{}, SignedCosine{}} {
		if got, want := m.Score(s1, other), refScore(m.Name(), s1, other); got != want {
			t.Fatalf("%s sibling 1: got %v want %v", m.Name(), got, want)
		}
		if got, want := m.Score(s2, other), refScore(m.Name(), s2, other); got != want {
			t.Fatalf("%s sibling 2: got %v want %v", m.Name(), got, want)
		}
		// And again in the opposite order, so each sibling scores with a
		// cell most recently claimed by the other.
		if got, want := m.Score(s1, other), refScore(m.Name(), s1, other); got != want {
			t.Fatalf("%s sibling 1 (second pass): got %v want %v", m.Name(), got, want)
		}
	}
}

// TestProfileFromListsMatchesWithRatingLoop pins the bulk wire constructor
// to the exact semantics of the rating-at-a-time decode loop it replaced:
// duplicates collapse and an item on both lists ends up disliked.
func TestProfileFromListsMatchesWithRatingLoop(t *testing.T) {
	cases := []struct{ liked, disliked []uint32 }{
		{nil, nil},
		{[]uint32{5, 3, 5, 1}, nil},
		{nil, []uint32{9, 9, 2}},
		{[]uint32{1, 2, 3, 4}, []uint32{3, 4, 5, 6}}, // overlap: dislikes win
		{[]uint32{7, 7, 7}, []uint32{7}},
		{[]uint32{100, 1, 50, 1, 100}, []uint32{50, 2, 2}},
	}
	for i, c := range cases {
		got := ProfileFromLists(42, c.liked, c.disliked)
		want := NewProfile(42)
		for _, x := range c.liked {
			want = want.WithRating(ItemID(x), true)
		}
		for _, x := range c.disliked {
			want = want.WithRating(ItemID(x), false)
		}
		if !got.Equal(want) {
			t.Fatalf("case %d: ProfileFromLists = %v, loop = %v", i, got, want)
		}
		if got.Version() != uint64(len(c.liked)+len(c.disliked)) {
			t.Fatalf("case %d: version = %d, want %d", i, got.Version(), len(c.liked)+len(c.disliked))
		}
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: size-ratio sweep for the galloping threshold and merge-vs-
// packed break-even for packMinSize.
// ---------------------------------------------------------------------------

// intersectGallopRef is the galloping path with no threshold gate, used to
// measure where galloping actually beats the merge.
func intersectGallopRef(a, b []ItemID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	count := 0
	lo := 0
	for _, x := range a {
		i := lo + searchIDs(b[lo:], x)
		if i < len(b) && b[i] == x {
			count++
			lo = i + 1
		} else {
			lo = i
		}
		if lo >= len(b) {
			break
		}
	}
	return count
}

func searchIDs(ids []ItemID, x ItemID) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func randomSet(rng *rand.Rand, n, space int) []ItemID {
	seen := make(map[ItemID]struct{}, n)
	out := make([]ItemID, 0, n)
	for len(out) < n {
		id := ItemID(rng.Intn(space))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return normalizeIDs(out)
}

// BenchmarkIntersect sweeps |a| and the |b|/|a| size ratio across the merge,
// galloping and dispatching implementations. This is the tuning input for
// IntersectCount's galloping threshold.
func BenchmarkIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sizes := []struct{ na, ratio int }{
		{16, 1}, {16, 8}, {16, 16}, {16, 32}, {16, 64}, {16, 128},
		{128, 1}, {128, 8}, {128, 16}, {128, 32},
	}
	for _, s := range sizes {
		nb := s.na * s.ratio
		space := nb * 4
		as := randomSet(rng, s.na, space)
		bs := randomSet(rng, nb, space)
		b.Run(fmt.Sprintf("merge/a=%d/ratio=%d", s.na, s.ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = intersectMergeRef(as, bs)
			}
		})
		b.Run(fmt.Sprintf("gallop/a=%d/ratio=%d", s.na, s.ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = intersectGallopRef(as, bs)
			}
		})
		b.Run(fmt.Sprintf("dispatch/a=%d/ratio=%d", s.na, s.ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = IntersectCount(as, bs)
			}
		})
	}
}

var sinkInt int
var sinkFloat float64

// BenchmarkSimilarityKernel compares a full metric score through the packed
// popcount kernel against the merge fallback at increasing profile sizes —
// the tuning input for packMinSize.
func BenchmarkSimilarityKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 8, 16, 32, 64, 128, 512} {
		mk := func(u UserID) Profile {
			liked := randomSet(rng, n, n*3)
			disliked := randomSet(rng, n/4+1, n*3)
			liked = subtractSorted(liked, disliked)
			return Profile{user: u, version: uint64(n), liked: liked, disliked: disliked, pk: &packCell{}}
		}
		pa, pb := mk(1), mk(2)
		b.Run(fmt.Sprintf("packed/cosine/n=%d", n), func(b *testing.B) {
			xa, xb := buildPacked(pa), buildPacked(pb)
			pa.pk.v.Store(xa)
			pb.pk.v.Store(xb)
			for i := 0; i < b.N; i++ {
				sinkInt = xa.intersectLiked(xb)
			}
		})
		b.Run(fmt.Sprintf("merge/cosine/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = IntersectCount(pa.liked, pb.liked)
			}
		})
		b.Run(fmt.Sprintf("packed/signed/n=%d", n), func(b *testing.B) {
			xa, xb := buildPacked(pa), buildPacked(pb)
			for i := 0; i < b.N; i++ {
				a, c := xa.signedCounts(xb)
				sinkInt = a + c
			}
		})
		b.Run(fmt.Sprintf("merge/signed/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agree := IntersectCount(pa.liked, pb.liked) + IntersectCount(pa.disliked, pb.disliked)
				clash := IntersectCount(pa.liked, pb.disliked) + IntersectCount(pa.disliked, pb.liked)
				sinkInt = agree + clash
			}
		})
		b.Run(fmt.Sprintf("dispatch/score/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkFloat = (SignedCosine{}).Score(pa, pb)
			}
		})
	}
}

// BenchmarkPackedWithRating measures the incremental maintenance cost of one
// rating through a warm pack (COW of one block) versus a full rebuild.
func BenchmarkPackedWithRating(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := NewProfile(1)
	for i := 0; i < 256; i++ {
		p = p.WithRating(ItemID(rng.Intn(1024)), rng.Intn(4) != 0)
	}
	pp := buildPacked(p)
	p.pk.v.Store(pp)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			child := p.WithRating(ItemID(i%1024), i%2 == 0)
			_ = child
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		child := p.WithRating(500, true)
		for i := 0; i < b.N; i++ {
			_ = buildPacked(child)
		}
	})
}
