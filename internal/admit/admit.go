// Package admit is the server-side admission gate: per-class bounded
// queues that turn overload into fast, typed load-shedding instead of
// unbounded queueing and OOM. Every request entering either transport
// plane (the /v1 HTTP mux, the framed binary listener) is classified —
// rating ingest, worker job traffic, or rec/neighbor reads — and must
// acquire a slot in its class before any work happens. A full class
// answers "overloaded" immediately (reads, worker traffic) or after a
// short bounded grace wait (rating ingest — the prioritized class: a
// rating burst queues briefly rather than shedding, and its slots are
// never consumed by read or worker floods, so an abusive read storm
// cannot move rating latency).
//
// The gate is deliberately transport-agnostic: it hands out release
// funcs and counters; the HTTP and framed layers translate a shed into
// their own envelope (429 {"error":{"code":"overloaded"}} with
// Retry-After, or a TError carrying the same code and hint).
package admit

import (
	"context"
	"sync/atomic"
	"time"
)

// Class is the admission class a request belongs to.
type Class int

const (
	// Rating is rating ingest (POST /v1/rate, /rate, TRateBatch) — the
	// prioritized class: its slots are isolated from the read and worker
	// classes, and over-limit arrivals wait a short grace window for a
	// slot before shedding.
	Rating Class = iota
	// Worker is worker job traffic: long-polls (GET /v1/job?worker=1,
	// TJobPull — a parked poll holds its slot for the whole park),
	// result posts and lease acks.
	Worker
	// Read is rec/neighbor reads and user-driven job fetches — the
	// first class shed under pressure (no grace wait).
	Read

	numClasses
)

// String names the class for error messages and metric keys.
func (c Class) String() string {
	switch c {
	case Rating:
		return "rating"
	case Worker:
		return "worker"
	case Read:
		return "read"
	default:
		return "unknown"
	}
}

// DefaultRetryAfter is the backoff hint announced with every shed when
// Config leaves RetryAfter zero.
const DefaultRetryAfter = time.Second

// DefaultRatingGrace is how long an over-limit rating arrival may wait
// for a slot before shedding (Config.RatingGrace zero). Reads and
// worker traffic never wait: shedding them fast is the point.
const DefaultRatingGrace = 50 * time.Millisecond

// Config bounds each class. Zero means unlimited for that class — the
// gate still counts inflight, it just never sheds. The queue depth of a
// bounded class (how many over-limit arrivals may wait for a slot
// during the grace window) equals its inflight bound.
type Config struct {
	// MaxRating / MaxWorker / MaxRead bound concurrently admitted
	// requests per class (0 = unlimited).
	MaxRating int
	MaxWorker int
	MaxRead   int
	// RatingGrace is the bounded wait a full rating class grants before
	// shedding (0 = DefaultRatingGrace; negative = shed immediately).
	RatingGrace time.Duration
	// RetryAfter is the hint shed responses carry (0 = DefaultRetryAfter).
	RetryAfter time.Duration
}

// Gate is the admission gate. All methods are safe for concurrent use;
// the zero value is not usable — call New.
type Gate struct {
	classes    [numClasses]classGate
	retryAfter time.Duration
	shedTotal  atomic.Int64
}

type classGate struct {
	// slots is the bounded-queue core: a buffered channel whose
	// capacity is the class's inflight bound. nil = unlimited.
	slots chan struct{}
	// grace is how long a full-class arrival may wait for a slot.
	grace time.Duration
	// waiters bounds the grace-wait queue to cap(slots) so a sustained
	// flood cannot park unbounded goroutines behind a full class.
	waiters  atomic.Int64
	inflight atomic.Int64
	shed     atomic.Int64
}

// New builds a gate from cfg.
func New(cfg Config) *Gate {
	g := &Gate{retryAfter: cfg.RetryAfter}
	if g.retryAfter <= 0 {
		g.retryAfter = DefaultRetryAfter
	}
	ratingGrace := cfg.RatingGrace
	if ratingGrace == 0 {
		ratingGrace = DefaultRatingGrace
	}
	if ratingGrace < 0 {
		ratingGrace = 0
	}
	bounds := [numClasses]int{Rating: cfg.MaxRating, Worker: cfg.MaxWorker, Read: cfg.MaxRead}
	for c := Class(0); c < numClasses; c++ {
		if bounds[c] > 0 {
			g.classes[c].slots = make(chan struct{}, bounds[c])
		}
		if c == Rating {
			g.classes[c].grace = ratingGrace
		}
	}
	return g
}

// Acquire admits one request of class c, blocking at most the class's
// grace window (and never past ctx). ok=false means the request was
// shed — the caller answers overloaded with RetryAfter as the hint and
// must not call release. On ok=true the caller owns a slot until it
// calls release (exactly once).
func (g *Gate) Acquire(ctx context.Context, c Class) (release func(), ok bool) {
	cg := &g.classes[c]
	if cg.slots == nil {
		cg.inflight.Add(1)
		return func() { cg.inflight.Add(-1) }, true
	}
	select {
	case cg.slots <- struct{}{}:
	default:
		if !g.acquireSlow(ctx, cg) {
			cg.shed.Add(1)
			g.shedTotal.Add(1)
			return nil, false
		}
	}
	cg.inflight.Add(1)
	return func() {
		cg.inflight.Add(-1)
		<-cg.slots
	}, true
}

// acquireSlow is the bounded-queue wait of a full class: up to
// cap(slots) arrivals may park for the grace window; everyone else (and
// everyone whose wait expires) is shed.
func (g *Gate) acquireSlow(ctx context.Context, cg *classGate) bool {
	if cg.grace <= 0 {
		return false
	}
	if int(cg.waiters.Add(1)) > cap(cg.slots) {
		cg.waiters.Add(-1)
		return false
	}
	defer cg.waiters.Add(-1)
	timer := time.NewTimer(cg.grace)
	defer timer.Stop()
	select {
	case cg.slots <- struct{}{}:
		return true
	case <-timer.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// RetryAfter is the backoff hint shed responses carry.
func (g *Gate) RetryAfter() time.Duration { return g.retryAfter }

// ShedTotal is the total requests shed across all classes.
func (g *Gate) ShedTotal() int64 { return g.shedTotal.Load() }

// Inflight reports class c's currently admitted requests.
func (g *Gate) Inflight(c Class) int64 { return g.classes[c].inflight.Load() }

// Shed reports class c's total shed requests.
func (g *Gate) Shed(c Class) int64 { return g.classes[c].shed.Load() }

// AddStats merges the gate's counters into a /stats map: shed_total,
// and per-class inflight_* gauges and shed_* counters.
func (g *Gate) AddStats(m map[string]any) {
	m["shed_total"] = g.ShedTotal()
	for c := Class(0); c < numClasses; c++ {
		m["inflight_"+c.String()] = g.Inflight(c)
		m["shed_"+c.String()] = g.Shed(c)
	}
}
