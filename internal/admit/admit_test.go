package admit

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestUnlimitedClassNeverSheds(t *testing.T) {
	g := New(Config{})
	ctx := context.Background()
	var releases []func()
	for i := 0; i < 1000; i++ {
		rel, ok := g.Acquire(ctx, Read)
		if !ok {
			t.Fatalf("unlimited class shed at acquisition %d", i)
		}
		releases = append(releases, rel)
	}
	if got := g.Inflight(Read); got != 1000 {
		t.Fatalf("inflight = %d, want 1000", got)
	}
	for _, rel := range releases {
		rel()
	}
	if got := g.Inflight(Read); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	if g.ShedTotal() != 0 {
		t.Fatalf("shed_total = %d, want 0", g.ShedTotal())
	}
}

func TestFullClassSheds(t *testing.T) {
	g := New(Config{MaxRead: 2})
	ctx := context.Background()
	rel1, ok1 := g.Acquire(ctx, Read)
	rel2, ok2 := g.Acquire(ctx, Read)
	if !ok1 || !ok2 {
		t.Fatal("acquisitions under the bound must succeed")
	}
	// Reads have no grace window: the third acquisition sheds immediately.
	if _, ok := g.Acquire(ctx, Read); ok {
		t.Fatal("third read admitted past MaxRead=2")
	}
	if g.Shed(Read) != 1 || g.ShedTotal() != 1 {
		t.Fatalf("shed(read)=%d shed_total=%d, want 1/1", g.Shed(Read), g.ShedTotal())
	}
	rel1()
	rel3, ok := g.Acquire(ctx, Read)
	if !ok {
		t.Fatal("slot freed by release was not reusable")
	}
	rel3()
	rel2()
}

func TestRatingGraceWaitsForSlot(t *testing.T) {
	g := New(Config{MaxRating: 1, RatingGrace: time.Second})
	ctx := context.Background()
	rel, ok := g.Acquire(ctx, Rating)
	if !ok {
		t.Fatal("first rating acquisition must succeed")
	}
	done := make(chan bool, 1)
	go func() {
		rel2, ok := g.Acquire(ctx, Rating)
		if ok {
			rel2()
		}
		done <- ok
	}()
	// Give the waiter time to park, then free the slot: the graced
	// arrival must get it instead of shedding.
	time.Sleep(20 * time.Millisecond)
	rel()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("graced rating arrival shed despite a slot freeing within the window")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("graced arrival never resolved")
	}
	if g.ShedTotal() != 0 {
		t.Fatalf("shed_total = %d, want 0", g.ShedTotal())
	}
}

func TestRatingGraceExpiresToShed(t *testing.T) {
	g := New(Config{MaxRating: 1, RatingGrace: 10 * time.Millisecond})
	rel, _ := g.Acquire(context.Background(), Rating)
	defer rel()
	start := time.Now()
	if _, ok := g.Acquire(context.Background(), Rating); ok {
		t.Fatal("second rating admitted past MaxRating=1 with the slot held")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("grace wait took %v, want ~10ms", waited)
	}
	if g.Shed(Rating) != 1 {
		t.Fatalf("shed(rating) = %d, want 1", g.Shed(Rating))
	}
}

func TestGraceQueueDepthBounded(t *testing.T) {
	// One slot held, long grace: at most cap(slots)=1 arrival may wait;
	// further arrivals shed immediately instead of parking goroutines.
	g := New(Config{MaxRating: 1, RatingGrace: 5 * time.Second})
	rel, _ := g.Acquire(context.Background(), Rating)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan struct{})
	go func() {
		close(parked)
		g.Acquire(ctx, Rating) // parks for the grace window until cancel
	}()
	<-parked
	time.Sleep(20 * time.Millisecond) // let the waiter enter acquireSlow
	start := time.Now()
	if _, ok := g.Acquire(context.Background(), Rating); ok {
		t.Fatal("second over-limit arrival admitted")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("over-depth arrival waited %v, want immediate shed", waited)
	}
	cancel()
	rel()
}

func TestClassIsolation(t *testing.T) {
	// A read flood at its bound must not consume rating slots.
	g := New(Config{MaxRating: 4, MaxRead: 1, RatingGrace: -1})
	ctx := context.Background()
	relRead, ok := g.Acquire(ctx, Read)
	if !ok {
		t.Fatal("read acquisition under bound failed")
	}
	defer relRead()
	for i := 0; i < 50; i++ {
		g.Acquire(ctx, Read) // all shed: the one read slot is held
	}
	for i := 0; i < 4; i++ {
		rel, ok := g.Acquire(ctx, Rating)
		if !ok {
			t.Fatalf("rating acquisition %d shed during read flood", i)
		}
		defer rel()
	}
	if g.Shed(Rating) != 0 {
		t.Fatalf("rating shed %d during read flood, want 0", g.Shed(Rating))
	}
	if g.Shed(Read) != 50 {
		t.Fatalf("shed(read) = %d, want 50", g.Shed(Read))
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	g := New(Config{MaxRating: 8, MaxWorker: 8, MaxRead: 8, RatingGrace: time.Millisecond})
	ctx := context.Background()
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := Class(w % int(numClasses))
			for i := 0; i < 500; i++ {
				if rel, ok := g.Acquire(ctx, c); ok {
					admitted.Add(1)
					rel()
				}
			}
		}(w)
	}
	wg.Wait()
	for c := Class(0); c < numClasses; c++ {
		if got := g.Inflight(c); got != 0 {
			t.Fatalf("inflight_%s = %d after all releases, want 0", c, got)
		}
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing was admitted")
	}
}

func TestAddStats(t *testing.T) {
	g := New(Config{MaxRead: 1})
	rel, _ := g.Acquire(context.Background(), Read)
	g.Acquire(context.Background(), Read) // shed
	m := map[string]any{}
	g.AddStats(m)
	if m["shed_total"] != int64(1) || m["shed_read"] != int64(1) || m["inflight_read"] != int64(1) {
		t.Fatalf("stats = %v", m)
	}
	rel()
}
