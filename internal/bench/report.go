package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// ReportSchema versions the BENCH_hotpath.json layout.
const ReportSchema = 1

// Report is the machine-readable capacity report — the file committed at
// the repo root as BENCH_hotpath.json and the unit scripts/bench.sh
// compares against.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Config echoes the options the report was measured under, so a
	// regression check can refuse to compare apples to oranges.
	WindowMS int   `json:"window_ms"`
	Workers  int   `json:"workers"`
	Users    int   `json:"users"`
	Seed     int64 `json:"seed"`

	Scenarios []Result `json:"scenarios"`
}

// NewReport stamps an empty report with the environment and options.
func NewReport(opt Options) *Report {
	opt = opt.withDefaults()
	return &Report{
		Schema:    ReportSchema,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		WindowMS:  int(opt.Window / time.Millisecond),
		Workers:   opt.Workers,
		Users:     opt.Users,
		Seed:      opt.Seed,
	}
}

// WriteFile serializes the report as stable, human-diffable JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: decode report %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: report %s has schema %d, want %d", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// key identifies a scenario row across reports.
func (res Result) key() string { return res.Scenario + "/" + res.Service + "/" + res.Mode }

// Tolerance bounds how far a current run may drift from the committed
// baseline before Compare flags it.
type Tolerance struct {
	// MinThroughputRatio: current/baseline throughput must be at least
	// this. Wall-clock throughput is machine- and load-sensitive, so the
	// CI default is deliberately loose — it catches collapses, not
	// percents.
	MinThroughputRatio float64
	// MaxAllocsRatio: current/baseline allocs-per-op must be at most
	// this. Allocation counts are deterministic per build, so this bound
	// is the tight one: it is what fails CI when someone un-pools the
	// hot path.
	MaxAllocsRatio float64
	// AllocCaps sets absolute allocs/op ceilings for specific rows,
	// keyed scenario/service/mode. Unlike the ratio bound, these do not
	// drift when the baseline is refreshed: a capped row must stay under
	// its ceiling no matter what number the last regeneration recorded.
	// A capped row that goes unmeasured is itself a violation.
	AllocCaps map[string]float64
}

// DefaultTolerance is the CI guard configuration.
func DefaultTolerance() Tolerance {
	return Tolerance{MinThroughputRatio: 0.25, MaxAllocsRatio: 1.5}
}

// Compare checks current against baseline scenario-by-scenario and
// returns one message per violation (empty = no regression). Scenarios
// present only in one report are reported too: a silently dropped
// scenario must not pass the guard. Runs over a different workload
// configuration (population, seed, worker count) are refused outright —
// their per-op numbers are not commensurate; only the window may differ
// (throughput is per-second and allocs/op is steady-state).
func Compare(baseline, current *Report, tol Tolerance) []string {
	if tol.MinThroughputRatio <= 0 {
		tol.MinThroughputRatio = DefaultTolerance().MinThroughputRatio
	}
	if tol.MaxAllocsRatio <= 0 {
		tol.MaxAllocsRatio = DefaultTolerance().MaxAllocsRatio
	}
	var issues []string
	if baseline.Users != current.Users || baseline.Seed != current.Seed {
		issues = append(issues, fmt.Sprintf(
			"config mismatch: baseline users=%d seed=%d, current users=%d seed=%d — not comparable; rerun with matching -bench-users/-seed or refresh the baseline",
			baseline.Users, baseline.Seed, current.Users, current.Seed))
		return issues
	}
	if baseline.Workers != current.Workers {
		issues = append(issues, fmt.Sprintf(
			"config mismatch: baseline measured with %d workers, current with %d — allocs/op is only deterministic at matching concurrency; pass -bench-workers %d or refresh the baseline",
			baseline.Workers, current.Workers, baseline.Workers))
		return issues
	}
	cur := make(map[string]Result, len(current.Scenarios))
	for _, res := range current.Scenarios {
		cur[res.key()] = res
	}
	seen := make(map[string]bool, len(baseline.Scenarios))
	for _, base := range baseline.Scenarios {
		seen[base.key()] = true
		now, ok := cur[base.key()]
		if !ok {
			issues = append(issues, fmt.Sprintf("%s: present in baseline but not measured", base.key()))
			continue
		}
		if base.ThroughputOpsPerSec > 0 {
			ratio := now.ThroughputOpsPerSec / base.ThroughputOpsPerSec
			if ratio < tol.MinThroughputRatio {
				issues = append(issues, fmt.Sprintf(
					"%s: throughput %.0f ops/s is %.0f%% of baseline %.0f ops/s (floor %.0f%%)",
					base.key(), now.ThroughputOpsPerSec, ratio*100,
					base.ThroughputOpsPerSec, tol.MinThroughputRatio*100))
			}
		}
		// Shed rows (the adversarial overload scenario) are exempt from
		// the alloc ceiling: the flood's own allocations dominate the
		// process-wide counters and are not the workload's cost.
		// The ratio is gated on an absolute increase of at least one
		// alloc/op: on near-allocation-free rows (the kernel row runs at
		// ~0.000x allocs/op) the ratio of two noise floors is meaningless
		// — the absolute AllocCaps below are what guard those rows.
		if base.AllocsPerOp > 0 && base.ShedTotal == 0 {
			ratio := now.AllocsPerOp / base.AllocsPerOp
			if ratio > tol.MaxAllocsRatio && now.AllocsPerOp-base.AllocsPerOp > 1 {
				issues = append(issues, fmt.Sprintf(
					"%s: allocs/op %.1f is %.1fx baseline %.1f (ceiling %.1fx)",
					base.key(), now.AllocsPerOp, ratio, base.AllocsPerOp, tol.MaxAllocsRatio))
			}
		}
		// On adversarial rows the gate must still be engaging: a build
		// that stops shedding under the same flood has silently lost its
		// admission control.
		if base.ShedTotal > 0 && now.ShedTotal == 0 {
			issues = append(issues, fmt.Sprintf(
				"%s: shed path inactive: baseline shed %d requests under the flood, current shed none — admission gate not engaging",
				base.key(), base.ShedTotal))
		}
		// Failures are excluded from throughput, so a failing build
		// cannot hide behind a fast error path — but the failures
		// themselves must also not pass silently.
		if total := now.Ops + now.Failures; total > 0 {
			rate := float64(now.Failures) / float64(total)
			baseTotal := base.Ops + base.Failures
			baseRate := 0.0
			if baseTotal > 0 {
				baseRate = float64(base.Failures) / float64(baseTotal)
			}
			if rate > 0.01 && rate > 2*baseRate {
				issues = append(issues, fmt.Sprintf(
					"%s: %.1f%% of operations failed (baseline %.1f%%)",
					base.key(), rate*100, baseRate*100))
			}
		}
	}
	for _, res := range current.Scenarios {
		if !seen[res.key()] {
			issues = append(issues, fmt.Sprintf("%s: measured but missing from baseline (regenerate BENCH_hotpath.json)", res.key()))
		}
	}
	for key, ceil := range tol.AllocCaps {
		now, ok := cur[key]
		if !ok {
			issues = append(issues, fmt.Sprintf("%s: alloc-capped row not measured", key))
			continue
		}
		if now.AllocsPerOp > ceil {
			issues = append(issues, fmt.Sprintf(
				"%s: allocs/op %.1f exceeds the absolute ceiling %.1f",
				key, now.AllocsPerOp, ceil))
		}
	}
	sort.Strings(issues)
	return issues
}

// Fprint renders the report as the plain-text table hyrec-bench prints.
func Fprint(w io.Writer, r *Report) {
	fmt.Fprintf(w, "capacity report (%s, %d cpu, window %dms, %d workers, %d users)\n",
		r.GoVersion, r.NumCPU, r.WindowMS, r.Workers, r.Users)
	fmt.Fprintf(w, "%-18s %-12s %-7s %12s %9s %9s %10s %10s\n",
		"scenario", "service", "mode", "ops/s", "p50 ms", "p99 ms", "allocs/op", "fail")
	for _, res := range r.Scenarios {
		fmt.Fprintf(w, "%-18s %-12s %-7s %12.0f %9.3f %9.3f %10.1f %10d\n",
			res.Scenario, res.Service, res.Mode,
			res.ThroughputOpsPerSec, res.P50Ms, res.P99Ms, res.AllocsPerOp, res.Failures)
	}
}
