//go:build !race

package bench

// raceEnabled reports whether the race detector is instrumenting this
// build. Process-wide allocation accounting is distorted by the
// detector's shadow allocations, so alloc-ratio assertions gate on it.
const raceEnabled = false
