package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/fleet"
	"hyrec/internal/server"
	"hyrec/internal/stats"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
	"hyrec/internal/ws"
)

// JobWS measures the browser-true worker transport end to end: a
// scheduler-enabled engine behind a live HTTP server, one persistent
// WebSocket per worker running the credit loop — grant one credit, take
// the pushed job frame, run the widget kernel, send the result — while a
// feeder keeps the staleness queue supplied so the socket never idles.
// One op is one completed push→compute→result cycle; the latency sample
// is the full cycle time, both ends of the connection included.
func JobWS(ctx context.Context, opt Options) (Result, error) {
	opt = opt.withDefaults()
	const items = 2000
	cfg := server.DefaultConfig()
	cfg.Seed = opt.Seed
	// Long leases, no fallback: the workers on the sockets are the only
	// compute, so the measurement is the transport, not churn recovery.
	cfg.LeaseTTL = 30 * time.Second
	cfg.LeaseRetries = 1
	eng := server.NewEngine(cfg)
	defer eng.Close()
	if err := seedPopulation(ctx, eng, opt.Users, items, 6); err != nil {
		return Result{}, fmt.Errorf("bench: job-ws setup: %w", err)
	}
	hs := server.NewServer(eng, 0)
	ts := httptest.NewServer(hs.Handler())
	defer func() { ts.Close(); hs.Close() }()

	// Feeder: sweep the population stale so the scheduler always has
	// jobs to push. MarkStale on a user already queued or leased is a
	// no-op, so the sweep cannot outrun dispatch into duplicate work.
	feedCtx, stopFeed := context.WithCancel(ctx)
	defer stopFeed()
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		sch := eng.Scheduler()
		for feedCtx.Err() == nil {
			for u := 1; u <= opt.Users; u++ {
				sch.MarkStale(core.UserID(u))
			}
			select {
			case <-feedCtx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	// Warm before measuring, like the closed-loop harness: the dial,
	// the handshake, buffer pools and the GC debt from seeding must not
	// be charged to the steady-state numbers. The floor is higher than
	// Run's because a fresh socket session ramps for a few hundred
	// milliseconds (pool growth, first queue drain), and short CI
	// windows must still measure the same steady state as the baseline.
	warm := opt.Window / 8
	if warm < 250*time.Millisecond {
		warm = 250 * time.Millisecond
	}
	measureStart := time.Now().Add(warm)
	deadline := measureStart.Add(opt.Window)
	lat := make([][]float64, opt.Workers)
	var m0, m1 runtime.MemStats
	var wg sync.WaitGroup
	errs := make([]error, opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := ws.Dial(ctx, ts.URL+wire.WSWorkerPath, 0)
			if err != nil {
				errs[w] = err
				return
			}
			defer func() {
				conn.WriteClose(ws.CloseNormal, "")
				conn.Close()
			}()
			conn.SetReadDeadline(deadline)
			kernel := widget.New()
			local := make([]float64, 0, 4096)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				raw, err := wire.EncodeWSClientMsg(&wire.WSClientMsg{Want: 1})
				if err != nil {
					errs[w] = err
					return
				}
				if err := conn.WriteMessage(ws.OpText, raw); err != nil {
					errs[w] = err
					return
				}
				var job *wire.Job
				for job == nil {
					_, frame, err := conn.ReadMessage()
					if err != nil {
						var ne net.Error
						if errors.As(err, &ne) && ne.Timeout() {
							lat[w] = local
							return // window lapsed mid-wait
						}
						errs[w] = err
						return
					}
					if wire.IsWSError(frame) {
						continue
					}
					if job, err = wire.DecodeJob(frame); err != nil {
						errs[w] = err
						return
					}
				}
				res, _ := kernel.Execute(job)
				raw, err = wire.EncodeWSClientMsg(&wire.WSClientMsg{Result: res})
				if err != nil {
					errs[w] = err
					return
				}
				if err := conn.WriteMessage(ws.OpText, raw); err != nil {
					errs[w] = err
					return
				}
				if t0.After(measureStart) {
					local = append(local, float64(time.Since(t0))/float64(time.Millisecond))
				}
			}
			lat[w] = local
		}(w)
	}
	time.Sleep(time.Until(measureStart))
	runtime.ReadMemStats(&m0)
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	stopFeed()
	feedWG.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("bench: job-ws worker: %w", err)
		}
	}

	all := mergeSorted(lat)
	res := Result{
		Scenario: "job-ws",
		Service:  "engine-ws",
		Mode:     "wire",
		Workers:  opt.Workers,
		Ops:      int64(len(all)),
		Seconds:  elapsed.Seconds(),
	}
	if len(all) == 0 {
		return res, fmt.Errorf("bench: job-ws completed zero cycles")
	}
	res.ThroughputOpsPerSec = float64(len(all)) / elapsed.Seconds()
	res.P50Ms = stats.Percentile(all, 50)
	res.P99Ms = stats.Percentile(all, 99)
	res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(len(all))
	res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(len(all))
	return res, nil
}

// FleetChurn measures whole-fleet convergence under churn: a seeded
// deterministic fleet plan — silent abandonment plus one mass disconnect
// at 50% convergence — is replayed against a fresh staleness queue until
// the window lapses. Ops are jobs completed by the fleet; the latency
// samples are per-cycle convergence times, so p50/p99 report how long a
// churny fleet takes to refresh every user's row.
func FleetChurn(ctx context.Context, opt Options) (Result, error) {
	opt = opt.withDefaults()
	// A convergence cycle takes on the order of 100ms; a sub-second
	// window measures too few cycles to amortize per-cycle variance
	// (lease-retry and fallback-absorption timing), so short CI windows
	// are floored to compare like-for-like with the committed baseline.
	if opt.Window < time.Second {
		opt.Window = time.Second
	}
	cfg := server.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.LeaseTTL = 30 * time.Millisecond
	cfg.LeaseRetries = 1
	cfg.FallbackWorkers = 4
	eng := server.NewEngine(cfg)
	defer eng.Close()
	var ratings []core.Rating
	for u := 1; u <= opt.Users; u++ {
		for j := 0; j < 3; j++ {
			ratings = append(ratings, core.Rating{
				User:  core.UserID(u),
				Item:  core.ItemID((u + j) % 97),
				Liked: (u+j)%3 != 0,
			})
		}
	}
	if err := eng.RateBatch(ctx, ratings); err != nil {
		return Result{}, fmt.Errorf("bench: fleet-churn setup: %w", err)
	}
	target, err := fleet.NewServiceTarget(eng)
	if err != nil {
		return Result{}, fmt.Errorf("bench: fleet-churn setup: %w", err)
	}
	plan := fleet.NewPlan(fleet.Config{
		Seed:        opt.Seed,
		Sessions:    64,
		ChurnyFrac:  1,
		SilentFrac:  1,
		AbandonProb: 0.5,
		Disconnects: []fleet.Disconnect{
			{Frac: 0.3, AtConvergedFrac: 0.5},
		},
		MeanTabLifetime: 30 * time.Second,
		JoinSpread:      time.Second,
	})

	sch := eng.Scheduler()
	cycle := func() (*fleet.Report, error) {
		rep, err := fleet.Run(ctx, plan, fleet.Options{
			Target:    target,
			Sched:     sch,
			Users:     opt.Users,
			TimeScale: 0.01,
			Budget:    time.Minute,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fleet-churn run: %w", err)
		}
		if !rep.Converged {
			return nil, fmt.Errorf("bench: fleet-churn cycle did not converge: %s", rep)
		}
		return rep, nil
	}
	// One unmeasured warm cycle pays off the seeding GC debt and the
	// first-convergence sweep before steady-state accounting begins.
	if _, err := cycle(); err != nil {
		return Result{}, err
	}

	var lats []float64
	var completed int64
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	deadline := start.Add(opt.Window)
	for first := true; first || time.Now().Before(deadline); first = false {
		// Re-dirty the population for the next convergence cycle.
		for u := 1; u <= opt.Users; u++ {
			sch.MarkStale(core.UserID(u))
		}
		t0 := time.Now()
		rep, err := cycle()
		if err != nil {
			return Result{}, err
		}
		lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
		completed += rep.Completed
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	res := Result{
		Scenario: "fleet-churn",
		Service:  "engine-fleet",
		Mode:     "inproc",
		Workers:  opt.Workers,
		Ops:      completed,
		Seconds:  elapsed.Seconds(),
	}
	if completed == 0 {
		return res, fmt.Errorf("bench: fleet-churn completed zero jobs")
	}
	res.ThroughputOpsPerSec = float64(completed) / elapsed.Seconds()
	res.P50Ms = stats.Percentile(lats, 50)
	res.P99Ms = stats.Percentile(lats, 99)
	res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(completed)
	res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(completed)
	return res, nil
}
