package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"hyrec/client"
	"hyrec/internal/core"
	"hyrec/internal/loadgen"
	"hyrec/internal/server"
)

// Overload is the adversarial capacity scenario: a read-side flood at
// 10× the nominal worker count — recommendation reads plus worker
// long-polls — hammers a live server whose read and worker classes are
// admission-bounded, while the measured workload (the same batched
// rating ingest as rate-batch-wire) keeps flowing through the same
// server. The committed row is the rating measurement taken UNDER the
// flood, plus the number of requests the gate shed to protect it; the
// paper-level claim (Section 5's capacity argument only holds if
// overload degrades service, not the server) is that ingest p99 moves
// at most 2× against its unflooded baseline, asserted by
// TestOverloadProtectsIngest and guarded in CI by the shed_total > 0
// check in Compare.
//
// The worker leg of the flood is what makes shedding deterministic on
// any host: the scenario drains the job queue under a long lease TTL
// first, so every flood worker poll either parks — holding its Worker
// slot for the whole wait window — or sheds against the parked one.
// The rec-read leg sheds only when admitted reads actually overlap,
// which a single-CPU host serializing microsecond handlers may never
// produce; it still contributes the read-side CPU pressure the p99
// assertion is measured against.
func Overload(ctx context.Context, opt Options) (Result, error) {
	res, _, err := overloadRun(ctx, opt)
	return res, err
}

// floodPace is the per-flooder request interval: the flood is a paced
// open-loop load (a botnet of fixed-rate clients), not an unbounded
// closed loop — shedding bounds the server's queues and memory, but no
// gate can hand the ingest path CPU back from a flood allowed to spin
// at line rate on the cheap 429 path.
const floodPace = 4 * time.Millisecond

// overloadRun measures rating ingest twice — quiet, then under the
// flood — and returns the flooded row (with ShedTotal) alongside the
// quiet-baseline p99 for the protection assertion.
func overloadRun(ctx context.Context, opt Options) (Result, float64, error) {
	opt = opt.withDefaults()
	const items = 2000
	cfg := server.DefaultConfig()
	cfg.Seed = opt.Seed
	// The adversarial knobs: both flood-facing classes are admission-
	// bounded near serving capacity, so the flood sheds instead of
	// queueing behind (and starving) the rating path. Leases outlive
	// the window and are never acked, so once the queue drains the
	// worker polls park against an empty queue.
	cfg.MaxInflightRead = 2 * opt.Workers
	cfg.MaxInflightWorker = opt.Workers
	cfg.LeaseTTL = 5 * time.Minute

	eng := server.NewEngine(cfg)
	defer eng.Close()
	hs := server.NewServer(eng, 0)
	defer hs.Close()
	ts := httptest.NewServer(hs.Handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithTimeout(10*time.Second))
	defer c.Close()

	uids := loadgen.UIDRange(opt.Users)
	rateOp := loadgen.RateBatchOp(uids, items, 32)
	seeded := Scenario{
		Name:        "rate-under-read-flood",
		Description: "batched rating ingest while a 10x read flood (recs + worker polls) is being shed",
		Setup: func(ctx context.Context, svc server.Service) error {
			cl := svc.(*client.Client)
			for i := 0; i*32 < opt.Users*4; i++ {
				if err := rateOp(ctx, cl, i); err != nil {
					return err
				}
			}
			// Full personalization cycles so the rec store is populated:
			// the flood must exercise the real recommendation read, not
			// an instant no-recs-yet error path.
			for _, u := range uids {
				if err := roundTrip(ctx, cl, core.UserID(u)); err != nil {
					return err
				}
			}
			return nil
		},
		Op: func(ctx context.Context, svc server.Service, worker, i int) error {
			return rateOp(ctx, svc.(*client.Client), worker*1_000_003+i)
		},
	}

	// Quiet baseline: the same op stream with no flood.
	base, err := Run(ctx, c, seeded, opt)
	if err != nil {
		return Result{}, 0, fmt.Errorf("bench: overload baseline: %w", err)
	}

	// Drain the job queue: every stale user gets leased out and never
	// acked, so the flood's worker polls face an empty queue for the
	// whole window — park (holding a Worker slot) or shed. Ratings
	// during the measurement mark leased users dirty-again rather than
	// re-enqueueing them, so the queue stays empty.
	for drained := 0; drained <= opt.Users*2; drained++ {
		resp, err := http.Get(ts.URL + "/v1/job?worker=1")
		if err != nil {
			return Result{}, 0, fmt.Errorf("bench: overload drain: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNoContent {
			break
		}
	}

	// The flood: 10 paced flooders per nominal worker over a keep-alive
	// pool sized so every flooder's request is concurrently in the
	// server, not stuck in a TCP handshake. Raw HTTP, not the typed
	// client, so the flood does not politely back off on 429s. Three of
	// every four requests read recommendations; the fourth is a worker
	// long-poll.
	flooders := 10 * opt.Workers
	floodClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        flooders * 2,
		MaxIdleConnsPerHost: flooders * 2,
	}}
	defer floodClient.CloseIdleConnections()
	floodCtx, stopFlood := context.WithCancel(ctx)
	defer stopFlood()
	var wg sync.WaitGroup
	for f := 0; f < flooders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			tick := time.NewTicker(floodPace)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-floodCtx.Done():
					return
				case <-tick.C:
				}
				u := benchUID(f, i, opt.Users)
				url := fmt.Sprintf("%s/v1/recs?uid=%d", ts.URL, u)
				if i%4 == 3 {
					url = ts.URL + "/v1/job?worker=1&wait=2s"
				}
				req, err := http.NewRequestWithContext(floodCtx, http.MethodGet, url, nil)
				if err != nil {
					return
				}
				resp, err := floodClient.Do(req)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(f)
	}

	// The measured row: identical op stream, now under fire. No Setup —
	// the population is already in place.
	flood, err := Run(ctx, c, Scenario{
		Name:        seeded.Name,
		Description: seeded.Description,
		Op:          seeded.Op,
	}, opt)
	stopFlood()
	wg.Wait()
	if err != nil {
		return Result{}, 0, fmt.Errorf("bench: overload flood run: %w", err)
	}
	flood.ShedTotal = hs.Gate().ShedTotal()
	return flood, base.P99Ms, nil
}
