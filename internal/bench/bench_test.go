package bench

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hyrec/internal/cluster"
	"hyrec/internal/server"
)

func shortOpts() Options {
	return Options{Window: 80 * time.Millisecond, Workers: 2, Users: 48, Seed: 1}
}

// TestRunMeasuresScenario: the runner completes operations, records
// latency percentiles in order, and accounts allocations.
func TestRunMeasuresScenario(t *testing.T) {
	eng := server.NewEngine(server.DefaultConfig())
	defer eng.Close()
	sc := scenarioSet(48)["job-worker-heavy"]
	res, err := Run(context.Background(), eng, sc, shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Failures != 0 {
		t.Fatalf("%d workload failures", res.Failures)
	}
	if res.ThroughputOpsPerSec <= 0 {
		t.Fatalf("throughput %f", res.ThroughputOpsPerSec)
	}
	if res.P50Ms < 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("latency percentiles out of order: p50=%f p99=%f", res.P50Ms, res.P99Ms)
	}
	if res.AllocsPerOp < 0 {
		t.Fatalf("allocs/op %f", res.AllocsPerOp)
	}
}

// TestScenariosRunCleanOnEngineAndCluster: every named scenario completes
// without workload failures on both deployment shapes.
func TestScenariosRunCleanOnEngineAndCluster(t *testing.T) {
	for name, sc := range scenarioSet(48) {
		for _, shape := range []string{"engine", "cluster"} {
			svc := newShape(shape)
			res, err := Run(context.Background(), svc, sc, shortOpts())
			svc.Close()
			if err != nil {
				t.Fatalf("%s on %s: %v", name, shape, err)
			}
			if res.Failures != 0 {
				t.Fatalf("%s on %s: %d failures over %d ops", name, shape, res.Failures, res.Ops)
			}
		}
	}
}

func newShape(shape string) server.Service {
	cfg := server.DefaultConfig()
	if shape == "cluster" {
		return cluster.New(cfg, 4)
	}
	return server.NewEngine(cfg)
}

// TestReportRoundTripAndCompare: reports survive the file format, and the
// regression guard flags collapses, alloc explosions, and dropped
// scenarios — but not healthy runs.
func TestReportRoundTripAndCompare(t *testing.T) {
	base := NewReport(shortOpts())
	base.Scenarios = []Result{
		{Scenario: "rate-heavy", Service: "engine", Mode: "inproc", ThroughputOpsPerSec: 1000, AllocsPerOp: 10, P50Ms: 0.1, P99Ms: 0.5, Ops: 100},
		{Scenario: "job-wire", Service: "engine-wire", Mode: "wire", ThroughputOpsPerSec: 500, AllocsPerOp: 40, Ops: 50},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 2 || back.Scenarios[0] != base.Scenarios[0] {
		t.Fatalf("round trip changed report: %+v", back.Scenarios)
	}

	healthy := *base
	healthy.Scenarios = []Result{
		{Scenario: "rate-heavy", Service: "engine", Mode: "inproc", ThroughputOpsPerSec: 900, AllocsPerOp: 11},
		{Scenario: "job-wire", Service: "engine-wire", Mode: "wire", ThroughputOpsPerSec: 480, AllocsPerOp: 39},
	}
	if issues := Compare(base, &healthy, DefaultTolerance()); len(issues) != 0 {
		t.Fatalf("healthy run flagged: %v", issues)
	}

	collapsed := *base
	collapsed.Scenarios = []Result{
		{Scenario: "rate-heavy", Service: "engine", Mode: "inproc", ThroughputOpsPerSec: 100, AllocsPerOp: 10},
		{Scenario: "job-wire", Service: "engine-wire", Mode: "wire", ThroughputOpsPerSec: 480, AllocsPerOp: 200},
	}
	issues := Compare(base, &collapsed, DefaultTolerance())
	if len(issues) != 2 {
		t.Fatalf("want 2 issues (throughput collapse + alloc explosion), got %v", issues)
	}
	if !strings.Contains(issues[1], "throughput") || !strings.Contains(issues[0], "allocs/op") {
		t.Fatalf("unexpected issue wording: %v", issues)
	}

	dropped := *base
	dropped.Scenarios = base.Scenarios[:1]
	if issues := Compare(base, &dropped, DefaultTolerance()); len(issues) != 1 ||
		!strings.Contains(issues[0], "not measured") {
		t.Fatalf("dropped scenario not flagged: %v", issues)
	}

	// Absolute alloc caps bind regardless of the baseline ratio: 11 vs a
	// baseline of 10 passes the ratio guard but breaks a cap of 10.5, and
	// a capped row that disappears is flagged too.
	capped := DefaultTolerance()
	capped.AllocCaps = map[string]float64{"rate-heavy/engine/inproc": 10.5}
	issues = Compare(base, &healthy, capped)
	if len(issues) != 1 || !strings.Contains(issues[0], "absolute ceiling") {
		t.Fatalf("absolute alloc cap not enforced: %v", issues)
	}
	capped.AllocCaps = map[string]float64{"rate-heavy/engine/inproc": 20}
	if issues := Compare(base, &healthy, capped); len(issues) != 0 {
		t.Fatalf("run under the alloc cap flagged: %v", issues)
	}
	capped.AllocCaps = map[string]float64{"no-such/row/inproc": 1}
	if issues := Compare(base, &healthy, capped); len(issues) != 1 ||
		!strings.Contains(issues[0], "alloc-capped row not measured") {
		t.Fatalf("missing capped row not flagged: %v", issues)
	}
}

// TestSnapshotPathBeatsLockedBaselineOnAllocs is the bench-level form of
// the acceptance criterion, measured through the runner: pure job
// payload serving (assembly + encode, the path the snapshot tables and
// pooled encoders optimize) on a default engine must spend less than
// half the allocations per op of the retained lock-based configuration.
// TestHotPathAllocReduction (internal/server) pins the same bound with
// testing.AllocsPerRun precision.
func TestSnapshotPathBeatsLockedBaselineOnAllocs(t *testing.T) {
	if raceEnabled {
		// The detector's shadow allocations land in the process-wide
		// counters and wash out the ratio; TestHotPathAllocReduction
		// (internal/server) pins the same bound race-stably with
		// testing.AllocsPerRun.
		t.Skip("process-wide allocation ratios are unreliable under -race")
	}
	opts := shortOpts()
	opts.Window = 150 * time.Millisecond
	base := scenarioSet(opts.Users)["job-worker-heavy"]
	sc := Scenario{
		Name:  "serve-only",
		Setup: base.Setup,
		Op: func(ctx context.Context, svc server.Service, worker, i int) error {
			return servePayload(svc, benchUID(worker, i, opts.Users))
		},
	}

	lockedCfg := server.DefaultConfig()
	lockedCfg.DisableTableSnapshots = true
	locked := server.NewEngine(lockedCfg)
	lockedRes, err := Run(context.Background(), locked, sc, opts)
	locked.Close()
	if err != nil {
		t.Fatal(err)
	}

	snap := server.NewEngine(server.DefaultConfig())
	snapRes, err := Run(context.Background(), snap, sc, opts)
	snap.Close()
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("allocs/op: locked=%.1f snapshot=%.1f", lockedRes.AllocsPerOp, snapRes.AllocsPerOp)
	if snapRes.AllocsPerOp > lockedRes.AllocsPerOp/2 {
		t.Fatalf("snapshot path allocs/op %.1f not under half of locked baseline %.1f",
			snapRes.AllocsPerOp, lockedRes.AllocsPerOp)
	}
}

// TestCapacityShortRun drives the full matrix at a tiny window — the
// exact code path scripts/bench.sh and the capacity experiment run.
func TestCapacityShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity matrix needs a real HTTP server; skipped in -short")
	}
	opts := Options{Window: 60 * time.Millisecond, Workers: 2, Users: 32, Seed: 1}
	rep, err := Capacity(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) < 3 {
		t.Fatalf("capacity report has %d scenarios, want >= 3", len(rep.Scenarios))
	}
	for _, res := range rep.Scenarios {
		if res.Ops == 0 {
			t.Fatalf("%s: zero ops", res.key())
		}
		if res.ThroughputOpsPerSec <= 0 || res.P99Ms < res.P50Ms {
			t.Fatalf("%s: implausible stats %+v", res.key(), res)
		}
	}
	// A fresh run of the same build must pass its own regression guard.
	if issues := Compare(rep, rep, DefaultTolerance()); len(issues) != 0 {
		t.Fatalf("self-compare flagged: %v", issues)
	}
}

// TestWorkloadDeterminism: the op stream is a pure function of
// (worker, i) — two services fed the same stream end in the same state.
func TestWorkloadDeterminism(t *testing.T) {
	mk := func() *server.Engine { return server.NewEngine(server.DefaultConfig()) }
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	sc := scenarioSet(32)
	if err := sc["rate-heavy"].Setup(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := sc["rate-heavy"].Setup(ctx, b); err != nil {
		t.Fatal(err)
	}
	op := sc["rate-heavy"].Op
	for i := 0; i < 500; i++ {
		if err := op(ctx, a, 0, i); err != nil {
			t.Fatal(err)
		}
		if err := op(ctx, b, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if a.Profiles().Len() != b.Profiles().Len() {
		t.Fatalf("population diverged: %d vs %d", a.Profiles().Len(), b.Profiles().Len())
	}
	ua, ub := a.Profiles().Users(), b.Profiles().Users()
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("roster diverged at %d: %v vs %v", i, ua[i], ub[i])
		}
		pa, pb := a.Profiles().Get(ua[i]), b.Profiles().Get(ub[i])
		if !pa.Equal(pb) {
			t.Fatalf("profile diverged for %v", ua[i])
		}
	}
}

// TestRebalanceScenario: the live-resharding benchmark completes at a
// short window, moves users, and reports sane per-user numbers.
func TestRebalanceScenario(t *testing.T) {
	res, err := Rebalance(context.Background(), Options{Window: 50 * time.Millisecond, Workers: 2, Users: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "rebalance" || res.Service != "cluster-2x4" {
		t.Fatalf("rebalance result mislabeled: %+v", res)
	}
	if res.Ops <= 0 || res.ThroughputOpsPerSec <= 0 {
		t.Fatalf("rebalance moved nothing: %+v", res)
	}
	if res.P99Ms < res.P50Ms || res.AllocsPerOp <= 0 {
		t.Fatalf("implausible rebalance stats: %+v", res)
	}
}
