package bench

import (
	"context"
	"testing"
	"time"
)

// TestOverloadProtectsIngest is the adversarial scenario's acceptance
// assertion: under a 10x rec-read flood against an admission-bounded
// server, rating-ingest p99 moves at most 2x its unflooded baseline,
// and the gate actually shed traffic to make that true.
func TestOverloadProtectsIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("flood scenario needs a real measurement window")
	}
	opt := Options{Window: 300 * time.Millisecond, Workers: 2, Users: 96, Seed: 1}
	flood, baseP99, err := overloadRun(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if flood.ShedTotal == 0 {
		t.Fatal("gate shed nothing: the flood was never admission-limited")
	}
	if flood.Ops == 0 {
		t.Fatal("no rating operations completed under the flood")
	}
	if flood.Failures != 0 {
		t.Fatalf("%d rating operations failed under the flood (ingest must not shed here)", flood.Failures)
	}
	// 2x the quiet baseline, with a small absolute floor so sub-
	// millisecond baselines don't turn scheduler jitter into a ratio
	// violation. The ratio is not asserted under the race detector:
	// its instrumentation slows handlers by an unpredictable factor,
	// so the race run checks only that the gate engages and ingest
	// never sheds.
	allowed := 2 * baseP99
	if allowed < 2.0 {
		allowed = 2.0
	}
	if !raceEnabled && flood.P99Ms > allowed {
		t.Fatalf("rating p99 %.3fms under flood vs %.3fms quiet — more than 2x degradation (allowed %.3fms)",
			flood.P99Ms, baseP99, allowed)
	}
	t.Logf("quiet p99 %.3fms, flooded p99 %.3fms (allowed %.3fms), shed %d requests",
		baseP99, flood.P99Ms, allowed, flood.ShedTotal)
}
