// Package bench is HyRec's capacity-measurement subsystem: it drives any
// server.Service — an in-process Engine, a partitioned Cluster, or the
// typed HTTP client pointed at a live server — through named workload
// scenarios and records, per scenario, the three quantities the paper's
// economic argument rests on (Section 5: one server must sustain far more
// users than a CRec-style central recommender): sustained throughput,
// request latency (p50/p99), and allocations per operation.
//
// The runner is the closed-loop shape of stress.ServiceThroughput with
// loadgen.RunOps's latency accounting folded in: a fixed worker count
// issues operations back-to-back for a measurement window, each worker
// recording latencies locally (no shared state on the hot path), and
// process-wide allocation counters are sampled around the window.
// Workloads are deterministic: every operation is a pure function of
// (worker, iteration) over a seeded population, so two runs over the
// same build exercise the same request stream.
//
// Results serialize to the machine-readable BENCH_hotpath.json at the
// repo root (report.go); scripts/bench.sh replays the short form of every
// scenario in CI and fails when throughput or allocations regress beyond
// tolerance against the committed baseline. This file is the perf
// trajectory every PR is judged against.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hyrec/internal/server"
	"hyrec/internal/stats"
)

// Op is one logical operation against the service under test. i is the
// worker-local iteration counter; together with worker it determines the
// operation deterministically.
type Op func(ctx context.Context, svc server.Service, worker, i int) error

// Scenario is a named workload: a seeding step and the operation stream.
type Scenario struct {
	// Name identifies the scenario in reports ("rate-heavy", …).
	Name string
	// Description is the one-line summary shown in the text table.
	Description string
	// Setup seeds the service (population, ratings, warm KNN rows).
	Setup func(ctx context.Context, svc server.Service) error
	// Op issues one operation.
	Op Op
}

// Options parametrise a run.
type Options struct {
	// Window is the measurement window per scenario (default 2s).
	Window time.Duration
	// Workers is the closed-loop worker count (default GOMAXPROCS).
	Workers int
	// Seed drives workload derivation (default 1).
	Seed int64
	// Users is the seeded population size (default 512).
	Users int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 2 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Users <= 0 {
		o.Users = 512
	}
	return o
}

// Result is one scenario's measurement — the unit of BENCH_hotpath.json.
type Result struct {
	// Scenario is the workload name; Service names the deployment shape
	// under test (engine, cluster-4, engine-wire, …); Mode is "inproc"
	// or "wire".
	Scenario string `json:"scenario"`
	Service  string `json:"service"`
	Mode     string `json:"mode"`

	Workers  int     `json:"workers"`
	Ops      int64   `json:"ops"`
	Failures int64   `json:"failures"`
	Seconds  float64 `json:"seconds"`

	// ThroughputOpsPerSec is successfully completed operations per
	// second of window — failures are excluded, so a fast error path
	// cannot masquerade as capacity.
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	// P50Ms / P99Ms are per-operation latency percentiles in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// AllocsPerOp is process-wide heap allocations per successful
	// operation over the window (for wire scenarios this covers both
	// ends of the connection).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is process-wide heap bytes allocated per operation.
	BytesPerOp float64 `json:"bytes_per_op"`

	// ShedTotal counts requests the server's admission gate shed during
	// the measurement window. Non-zero only on adversarial rows (the
	// overload scenario); Compare requires a shed row's gate to still be
	// engaging, and skips the allocs/op ceiling for it (the flood's own
	// allocations land in the process-wide counters).
	ShedTotal int64 `json:"shed_total,omitempty"`
}

// Run executes one scenario against svc and measures it. The service is
// seeded by sc.Setup, warmed for ~1/8 of the window (pools, caches, JIT
// map growth), then measured for the full window.
func Run(ctx context.Context, svc server.Service, sc Scenario, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if sc.Setup != nil {
		if err := sc.Setup(ctx, svc); err != nil {
			return Result{}, fmt.Errorf("bench: setup %s: %w", sc.Name, err)
		}
	}

	warm := opt.Window / 8
	if warm < 20*time.Millisecond {
		warm = 20 * time.Millisecond
	}
	runWorkers(ctx, svc, sc.Op, opt.Workers, warm, nil)

	lat := make([][]float64, opt.Workers)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	failures := runWorkers(ctx, svc, sc.Op, opt.Workers, opt.Window, lat)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	all := mergeSorted(lat)
	res := Result{
		Scenario: sc.Name,
		Workers:  opt.Workers,
		Ops:      int64(len(all)),
		Failures: failures,
		Seconds:  elapsed.Seconds(),
	}
	if len(all) == 0 {
		return res, fmt.Errorf("bench: scenario %s completed zero operations", sc.Name)
	}
	res.ThroughputOpsPerSec = float64(len(all)) / elapsed.Seconds()
	res.P50Ms = stats.Percentile(all, 50)
	res.P99Ms = stats.Percentile(all, 99)
	res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(len(all))
	res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(len(all))
	return res, nil
}

// runWorkers drives the closed loop: `workers` goroutines issue ops until
// the deadline, recording per-op latency into lat[worker] when lat is
// non-nil (warmup passes nil). Returns the failure count.
func runWorkers(ctx context.Context, svc server.Service, op Op, workers int,
	window time.Duration, lat [][]float64) int64 {
	ctx, cancel := context.WithTimeout(ctx, window)
	defer cancel()
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	failures := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []float64
			if lat != nil {
				local = make([]float64, 0, 4096)
			}
			for i := 0; time.Now().Before(deadline); i++ {
				opStart := time.Now()
				err := op(ctx, svc, w, i)
				if err != nil {
					// The window closing mid-call is the harness, not
					// the workload.
					if ctx.Err() != nil {
						break
					}
					// Failed ops are counted but contribute no latency
					// sample: a fast error path must not inflate
					// throughput or deflate percentiles.
					failures[w]++
					continue
				}
				if lat != nil {
					local = append(local, float64(time.Since(opStart))/float64(time.Millisecond))
				}
			}
			if lat != nil {
				lat[w] = local
			}
		}(w)
	}
	wg.Wait()
	var failed int64
	for _, f := range failures {
		failed += f
	}
	return failed
}

func mergeSorted(lat [][]float64) []float64 {
	n := 0
	for _, l := range lat {
		n += len(l)
	}
	out := make([]float64, 0, n)
	for _, l := range lat {
		out = append(out, l...)
	}
	sort.Float64s(out)
	return out
}
