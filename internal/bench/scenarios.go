package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"hyrec/client"
	"hyrec/internal/cluster"
	"hyrec/internal/core"
	"hyrec/internal/loadgen"
	"hyrec/internal/node"
	"hyrec/internal/server"
	"hyrec/internal/stats"
	"hyrec/internal/topk"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// The named workload scenarios. Each is deterministic over a seeded
// population: operation i of worker w always touches the same user and
// item, so two runs of the same build measure the same request stream.

// benchUID spreads (worker, i) over the population with the same
// multiplicative-hash idiom the tables use for shard spreading.
func benchUID(worker, i, users int) core.UserID {
	return core.UserID(uint32(worker*1_000_003+i)*2654435761%uint32(users) + 1)
}

func benchItem(i, items int) core.ItemID {
	return core.ItemID(uint32(i*40503) % uint32(items))
}

// widgetPool shares deterministic widget kernels across workers without
// per-operation construction.
var widgetPool = sync.Pool{New: func() any { return widget.New() }}

// roundTrip runs one full personalization cycle: assemble u's job, run
// the browser-side kernel, fold the result back. A stale anonymiser
// epoch mid-cycle is the protocol working, not a workload failure.
func roundTrip(ctx context.Context, svc server.Service, u core.UserID) error {
	job, err := svc.Job(ctx, u)
	if err != nil {
		return err
	}
	w := widgetPool.Get().(*widget.Widget)
	res, _ := w.Execute(job)
	widgetPool.Put(w)
	if _, err := svc.ApplyResult(ctx, res); err != nil && !errors.Is(err, server.ErrStaleEpoch) {
		return err
	}
	return nil
}

// servePayload exercises the serving-path hot loop: assemble and
// serialize u's job exactly as the HTTP layer would — the pooled
// zero-allocation append path on a default configuration. A service
// configured with DisableTableSnapshots is measured on the retained
// baseline (per-call buffers, per-lookup locks), so locked-vs-snapshot
// comparisons pit the two complete hot paths against each other.
func servePayload(svc server.Service, u core.UserID) error {
	baseline := false
	if c, ok := svc.(server.Configured); ok {
		baseline = c.Config().DisableTableSnapshots
	}
	if pa, ok := svc.(server.PayloadAppender); ok && !baseline {
		bufs := wire.GetPayloadBufs()
		jsonBody, gzBody, err := pa.AppendJobPayload(context.Background(), u, bufs.JSON, bufs.Gz)
		if err == nil {
			bufs.JSON, bufs.Gz = jsonBody, gzBody
		}
		wire.PutPayloadBufs(bufs)
		return err
	}
	if p, ok := svc.(server.Payloader); ok {
		_, _, err := p.JobPayload(u)
		return err
	}
	return errors.New("bench: service serves no payloads")
}

// seedPopulation rates every user into existence (batched ingest) and
// runs one personalization cycle per user so the KNN graph, the
// serialized-profile cache and the staleness queues are warm — the
// steady-state condition the capacity claim is about.
func seedPopulation(ctx context.Context, svc server.Service, users, items, ratingsPer int) error {
	batch := make([]core.Rating, 0, 1024)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := svc.RateBatch(ctx, batch)
		batch = batch[:0]
		return err
	}
	for u := 1; u <= users; u++ {
		for j := 0; j < ratingsPer; j++ {
			batch = append(batch, core.Rating{
				User:  core.UserID(u),
				Item:  benchItem(u*ratingsPer+j, items),
				Liked: (u+j)%3 != 0,
			})
			if len(batch) == cap(batch) {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	for u := 1; u <= users; u++ {
		if err := roundTrip(ctx, svc, core.UserID(u)); err != nil {
			return err
		}
	}
	return nil
}

// scenarioSet builds the three canonical workloads over a population.
func scenarioSet(users int) map[string]Scenario {
	const items = 2000
	const ratingsPer = 6
	setup := func(ctx context.Context, svc server.Service) error {
		return seedPopulation(ctx, svc, users, items, ratingsPer)
	}
	return map[string]Scenario{
		// rate-heavy: the ingest path — profile updates and staleness
		// marking, no personalization serving.
		"rate-heavy": {
			Name:        "rate-heavy",
			Description: "pure rating ingest (Service.Rate)",
			Setup:       setup,
			Op: func(ctx context.Context, svc server.Service, worker, i int) error {
				u := benchUID(worker, i, users)
				return svc.Rate(ctx, u, benchItem(i, items), i%3 != 0)
			},
		},
		// job-worker-heavy: the serving path the zero-allocation work
		// targets — every op serializes a personalization job; every 8th
		// op is a full widget round trip folding a result back, the
		// worker side of the async scheduler's load shape.
		"job-worker-heavy": {
			Name:        "job-worker-heavy",
			Description: "job payload serving + widget result fold-in (1:8)",
			Setup:       setup,
			Op: func(ctx context.Context, svc server.Service, worker, i int) error {
				u := benchUID(worker, i, users)
				if i%8 == 7 {
					return roundTrip(ctx, svc, u)
				}
				return servePayload(svc, u)
			},
		},
		// mixed-churn: ingest, serving, fold-ins, reads and a trickle of
		// brand-new users arriving mid-run — the everything-at-once shape
		// a real deployment sees, exercising the snapshot read path under
		// concurrent table churn.
		"mixed-churn": {
			Name:        "mixed-churn",
			Description: "rates + jobs + results + reads + new-user arrivals",
			Setup:       setup,
			Op: func(ctx context.Context, svc server.Service, worker, i int) error {
				u := benchUID(worker, i, users)
				switch i % 10 {
				case 0, 1, 2, 3:
					return svc.Rate(ctx, u, benchItem(i, items), i%2 == 0)
				case 4, 5, 6:
					return servePayload(svc, u)
				case 7:
					return roundTrip(ctx, svc, u)
				case 8:
					_, err := svc.Neighbors(ctx, u)
					return err
				default:
					// A new user arrives: rate once, get a first job.
					fresh := core.UserID(users + worker*1_000_003%911 + i)
					if err := svc.Rate(ctx, fresh, benchItem(i, items), true); err != nil {
						return err
					}
					return servePayload(svc, fresh)
				}
			},
		},
	}
}

// wireScenarios builds the typed-client workloads (reusing the loadgen
// op vocabulary): the service under test is a client.Client speaking the
// /v1 protocol to a real HTTP server over localhost.
func wireScenarios(users int) map[string]Scenario {
	const items = 2000
	uids := loadgen.UIDRange(users)
	setup := func(ctx context.Context, svc server.Service) error {
		// Seed through the wire as a deployment would: batched ratings,
		// then one job fetch per user to warm server caches.
		c, ok := svc.(*client.Client)
		if !ok {
			return fmt.Errorf("bench: wire scenario needs a *client.Client, got %T", svc)
		}
		batchOp := loadgen.RateBatchOp(uids, items, 32)
		for i := 0; i*32 < users*4; i++ {
			if err := batchOp(ctx, c, i); err != nil {
				return err
			}
		}
		jobOp := loadgen.JobOp(uids)
		for i := 0; i < users; i++ {
			if err := jobOp(ctx, c, i); err != nil {
				return err
			}
		}
		return nil
	}
	fromLoadgen := func(op loadgen.Op) Op {
		return func(ctx context.Context, svc server.Service, worker, i int) error {
			return op(ctx, svc.(*client.Client), worker*1_000_003+i)
		}
	}
	return map[string]Scenario{
		"rate-batch-wire": {
			Name:        "rate-batch-wire",
			Description: "batched rating ingest through the typed client (POST /v1/rate)",
			Setup:       setup,
			Op:          fromLoadgen(loadgen.RateBatchOp(uids, items, 32)),
		},
		"job-wire": {
			Name:        "job-wire",
			Description: "gzip-negotiated job fetches through the typed client (GET /v1/job)",
			Setup:       setup,
			Op:          fromLoadgen(loadgen.JobOp(uids)),
		},
	}
}

// framedWireScenarios builds the framed-transport twins of the wire
// scenarios: the same typed client and the same deterministic op
// stream, but the hot paths ride one persistent multiplexed binary
// connection (client.WithFramed) instead of per-request HTTP. The job
// scenario fetches the raw payload bytes (client.JobRaw — the exact
// JSON the HTTP path serves), so the row prices the transport itself:
// framing versus connection setup, headers and chunked encoding.
func framedWireScenarios(users int) map[string]Scenario {
	base := wireScenarios(users)
	uids := loadgen.UIDRange(users)
	rb := base["rate-batch-wire"]
	rb.Name = "rate-batch-framed"
	rb.Description = "batched rating ingest over the persistent framed transport (TRateBatch)"
	jb := base["job-wire"]
	jb.Name = "job-framed"
	jb.Description = "raw job payload fetches over the persistent framed transport (TJobGet)"
	jb.Op = func(ctx context.Context, svc server.Service, worker, i int) error {
		c := svc.(*client.Client)
		n := worker*1_000_003 + i
		_, err := c.JobRaw(ctx, core.UserID(uids[n%len(uids)]))
		return err
	}
	return map[string]Scenario{"rate-batch-framed": rb, "job-framed": jb}
}

// NodeWire measures the multi-node distribution tax on the ingest path:
// the typed client rates through one node of a live two-node HTTP
// deployment, so roughly half of each batch is proxied to the owning
// peer (client → non-owner → owner), and every locally-applied batch is
// synchronously replicated to its partition's mirror before the ack
// returns — replication on, the durability the failover guarantee is
// priced at. Comparing rate-node-wire with rate-batch-wire reads off
// the proxy-plus-replication overhead directly.
func NodeWire(ctx context.Context, opt Options) (Result, error) {
	return nodeWire(ctx, opt, false)
}

// NodeWireFramed is NodeWire with the framed transport end to end:
// the driving client AND the node-to-node peer clients (proxy hop,
// replication ship) all ride persistent multiplexed binary
// connections. Comparing rate-node-framed with rate-node-wire reads
// off what framing buys the distribution tax.
func NodeWireFramed(ctx context.Context, opt Options) (Result, error) {
	return nodeWire(ctx, opt, true)
}

func nodeWire(ctx context.Context, opt Options, framed bool) (Result, error) {
	opt = opt.withDefaults()
	cfg := server.DefaultConfig()
	cfg.Seed = opt.Seed

	lns := make([]net.Listener, 2)
	frameLns := make([]net.Listener, 2)
	mems := make([]node.Member, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Result{}, fmt.Errorf("bench: node-wire listen: %w", err)
		}
		lns[i] = ln
		mems[i] = node.Member{ID: fmt.Sprintf("n%d", i+1), Addr: "http://" + ln.Addr().String()}
		if framed {
			fln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return Result{}, fmt.Errorf("bench: node-wire frame listen: %w", err)
			}
			frameLns[i] = fln
			mems[i].FrameAddr = fln.Addr().String()
		}
	}
	nodes := make([]*node.Node, 2)
	hsrvs := make([]*server.HTTPServer, 2)
	srvs := make([]*http.Server, 2)
	for i := range nodes {
		nd, err := node.New(node.Config{
			Self:       mems[i],
			Members:    mems,
			Partitions: 8,
			Engine:     cfg,
			// Static two-node deployment under measurement: liveness
			// probing off, the synchronous RateBatch leg and the async
			// dirty tail carry all replication.
			ReplicateEvery:   50 * time.Millisecond,
			AntiEntropyEvery: -1,
			HeartbeatEvery:   -1,
		})
		if err != nil {
			return Result{}, fmt.Errorf("bench: node-wire node %s: %w", mems[i].ID, err)
		}
		nodes[i] = nd
		hsrvs[i] = server.NewServer(nd, 0)
		srvs[i] = &http.Server{Handler: hsrvs[i].Handler()}
		go srvs[i].Serve(lns[i])
		if framed {
			go hsrvs[i].ServeFrames(frameLns[i])
		}
		nd.Start()
	}
	defer func() {
		for i := range nodes {
			srvs[i].Close()
			hsrvs[i].Close()
			nodes[i].Close()
		}
	}()

	const items = 2000
	uids := loadgen.UIDRange(opt.Users)
	name, desc := "rate-node-wire", "batched rating ingest via a non-owner node (proxy hop + synchronous replication)"
	if framed {
		name = "rate-node-framed"
		desc = "batched rating ingest via a non-owner node with every hop framed (client, proxy, replication)"
	}
	sc := Scenario{
		Name:        name,
		Description: desc,
		Setup: func(ctx context.Context, svc server.Service) error {
			c := svc.(*client.Client)
			batchOp := loadgen.RateBatchOp(uids, items, 32)
			for i := 0; i*32 < opt.Users*4; i++ {
				if err := batchOp(ctx, c, i); err != nil {
					return err
				}
			}
			return nil
		},
		Op: func(ctx context.Context, svc server.Service, worker, i int) error {
			return loadgen.RateBatchOp(uids, items, 32)(ctx, svc.(*client.Client), worker*1_000_003+i)
		},
	}
	copts := []client.Option{client.WithTimeout(10 * time.Second)}
	if framed {
		copts = append(copts, client.WithFramed(mems[0].FrameAddr))
	}
	c := client.New(mems[0].Addr, copts...)
	defer c.Close()
	res, err := Run(ctx, c, sc, opt)
	if err != nil {
		return Result{}, err
	}
	res.Service, res.Mode = "node-2-wire", "wire"
	if framed {
		res.Service, res.Mode = "node-2-framed", "framed"
	}
	return res, nil
}

// Rebalance measures the elastic-topology coordinator: a 2-partition
// cluster seeded with the standard population alternates live
// Scale(4)/Scale(2) cycles for the measurement window while light
// rate/serve traffic keeps flowing, and the scenario records
// users-moved per second as its throughput, per-moved-user milliseconds
// as its latency samples, and allocations per moved user — the
// rebalance numbers that ride alongside the capacity matrix in
// BENCH_hotpath.json.
func Rebalance(ctx context.Context, opt Options) (Result, error) {
	opt = opt.withDefaults()
	const items = 2000
	cfg := server.DefaultConfig()
	cfg.Seed = opt.Seed
	cl := cluster.New(cfg, 2)
	defer cl.Close()
	if err := seedPopulation(ctx, cl, opt.Users, items, 6); err != nil {
		return Result{}, fmt.Errorf("bench: rebalance setup: %w", err)
	}

	// Light concurrent traffic: the coordinator must stream state while
	// the cluster keeps serving (the live-migration claim).
	trafficCtx, stopTraffic := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; trafficCtx.Err() == nil; i++ {
				u := benchUID(w, i, opt.Users)
				if i%2 == 0 {
					cl.Rate(trafficCtx, u, benchItem(i, items), true)
				} else {
					servePayload(cl, u)
				}
			}
		}(w)
	}

	var lats []float64
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	deadline := start.Add(opt.Window)
	target := 4
	movedBase := cl.Topology().UsersMovedTotal
	for first := true; first || time.Now().Before(deadline); first = false {
		before := cl.Topology().UsersMovedTotal
		t0 := time.Now()
		if err := cl.Scale(ctx, target); err != nil {
			stopTraffic()
			wg.Wait()
			return Result{}, fmt.Errorf("bench: rebalance scale(%d): %w", target, err)
		}
		cycle := time.Since(t0)
		n := cl.Topology().UsersMovedTotal - before
		if n > 0 {
			per := float64(cycle) / float64(time.Millisecond) / float64(n)
			for i := int64(0); i < n; i++ {
				lats = append(lats, per)
			}
		}
		target = 6 - target // alternate 4 ↔ 2
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	stopTraffic()
	wg.Wait()

	moved := cl.Topology().UsersMovedTotal - movedBase
	res := Result{
		Scenario: "rebalance",
		Service:  "cluster-2x4",
		Mode:     "inproc",
		Workers:  opt.Workers,
		Ops:      moved,
		Seconds:  elapsed.Seconds(),
	}
	if moved == 0 {
		return res, fmt.Errorf("bench: rebalance moved zero users")
	}
	res.ThroughputOpsPerSec = float64(moved) / elapsed.Seconds()
	res.P50Ms = stats.Percentile(lats, 50)
	res.P99Ms = stats.Percentile(lats, 99)
	// Allocation counters include the concurrent traffic — the honest
	// cost of a rebalance under load.
	res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(moved)
	res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(moved)
	return res, nil
}

// KNNKernel measures the raw similarity kernel: candidate scores per
// second through SelectKNNInto over the standard seeded population, with
// no server, wire or scheduler in the way. One op is one candidate
// scored; latency samples are per-selection milliseconds. This is the
// row that prices the blocked-bitmap kernel itself — the server rows
// above it measure how much of that speed survives the full stack.
func KNNKernel(ctx context.Context, opt Options) (Result, error) {
	opt = opt.withDefaults()
	const items = 2000
	const ratingsPer = 24 // denser than seedPopulation's 6, so profiles
	// clear the packed-form size gate and the row prices the blocked-
	// bitmap kernel rather than the small-profile merge fallback
	cands := 32 // candidate-set size per selection (≈ K + hood churn)

	// The same deterministic derivations seedPopulation uses, built
	// directly as profiles.
	n := opt.Users
	profiles := make([]core.Profile, n)
	for u := 1; u <= n; u++ {
		p := core.NewProfile(core.UserID(u))
		for j := 0; j < ratingsPer; j++ {
			p = p.WithRating(benchItem(u*ratingsPer+j, items), (u+j)%3 != 0)
		}
		profiles[u-1] = p
	}
	if n < 2 {
		return Result{}, fmt.Errorf("bench: knn-kernel needs at least 2 users, have %d", n)
	}
	if cands > n-1 {
		cands = n - 1
	}
	cfg := server.DefaultConfig()
	metric := core.Cosine{}
	col := topk.New(cfg.K)
	var hood []core.Neighbor

	// Warm every profile's packed form so the window measures the
	// steady-state kernel, not one-time pack construction.
	for i := range profiles {
		metric.Score(profiles[i], profiles[(i+1)%n])
	}

	const batch = 128 // selections per latency sample
	lats := make([]float64, 0, 1<<16)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	deadline := start.Add(opt.Window)
	var selections int64
	for i := 0; ; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		t0 := time.Now()
		for b := 0; b < batch; b++ {
			j := int(uint32((i*batch+b)*2654435761) % uint32(n))
			lo := j
			if lo+cands > n {
				lo = n - cands
			}
			hood = core.SelectKNNInto(profiles[j], profiles[lo:lo+cands], cfg.K, metric, col, hood)
		}
		if len(lats) < cap(lats) {
			lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond)/batch)
		}
		selections += batch
		if time.Now().After(deadline) {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	scores := selections * int64(cands)
	res := Result{
		Scenario:            "knn-kernel",
		Service:             "core",
		Mode:                "inproc",
		Workers:             opt.Workers,
		Ops:                 scores,
		Seconds:             elapsed.Seconds(),
		ThroughputOpsPerSec: float64(scores) / elapsed.Seconds(),
		P50Ms:               stats.Percentile(lats, 50),
		P99Ms:               stats.Percentile(lats, 99),
		AllocsPerOp:         float64(m1.Mallocs-m0.Mallocs) / float64(scores),
		BytesPerOp:          float64(m1.TotalAlloc-m0.TotalAlloc) / float64(scores),
	}
	return res, nil
}

// Capacity runs the full capacity matrix: the three canonical scenarios
// against a single engine, the serving scenario against a 4-partition
// cluster, the rebalance scenario against a live-scaling cluster, the
// WebSocket worker loop and the churny-fleet convergence scenario, and
// the wire scenarios through the typed client against a live HTTP
// server. The result is the report committed as BENCH_hotpath.json.
func Capacity(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := NewReport(opt)
	inproc := scenarioSet(opt.Users)

	engineCfg := server.DefaultConfig()
	engineCfg.Seed = opt.Seed
	for _, name := range []string{"rate-heavy", "job-worker-heavy", "mixed-churn"} {
		eng := server.NewEngine(engineCfg)
		res, err := Run(ctx, eng, inproc[name], opt)
		eng.Close()
		if err != nil {
			return nil, err
		}
		res.Service, res.Mode = "engine", "inproc"
		rep.Scenarios = append(rep.Scenarios, res)
	}

	// The raw similarity kernel: candidate scores per second through
	// SelectKNNInto, no server in the way — the ceiling the serving rows
	// are measured against.
	{
		res, err := KNNKernel(ctx, opt)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}

	// The serving scenario again at 4 workers: parallel scaling of the
	// job hot path on one engine (the top-level report stays at
	// opt.Workers; this row carries its own worker count).
	{
		w4 := opt
		w4.Workers = 4
		// Floor the window (like fleet-churn): per-worker startup
		// allocations only amortize out of allocs/op over a real window.
		if w4.Window < time.Second {
			w4.Window = time.Second
		}
		eng := server.NewEngine(engineCfg)
		res, err := Run(ctx, eng, inproc["job-worker-heavy"], w4)
		eng.Close()
		if err != nil {
			return nil, err
		}
		res.Service, res.Mode = "engine-w4", "inproc"
		rep.Scenarios = append(rep.Scenarios, res)
	}

	// The serving scenario on a 4-partition cluster: same workload, now
	// with cross-partition candidate exchange in every candidate set.
	cl := cluster.New(engineCfg, 4)
	res, err := Run(ctx, cl, inproc["job-worker-heavy"], opt)
	cl.Close()
	if err != nil {
		return nil, err
	}
	res.Service, res.Mode = "cluster-4", "inproc"
	rep.Scenarios = append(rep.Scenarios, res)

	// The rebalance scenario: live 2↔4 scale cycles under traffic,
	// measured in users-moved/sec.
	res, err = Rebalance(ctx, opt)
	if err != nil {
		return nil, err
	}
	rep.Scenarios = append(rep.Scenarios, res)

	// The browser-true transport: the credit-push WebSocket worker loop
	// against a live server, measured in completed push→compute→result
	// cycles per second.
	res, err = JobWS(ctx, opt)
	if err != nil {
		return nil, err
	}
	rep.Scenarios = append(rep.Scenarios, res)

	// The fleet-churn scenario: whole-fleet convergence cycles under
	// silent abandonment and a mass disconnect, measured in completed
	// jobs per second with per-cycle convergence latency.
	res, err = FleetChurn(ctx, opt)
	if err != nil {
		return nil, err
	}
	rep.Scenarios = append(rep.Scenarios, res)

	// Wire mode: a real HTTP server on localhost, driven through the
	// typed client — the full network path of the paper's deployment.
	for _, name := range []string{"rate-batch-wire", "job-wire"} {
		eng := server.NewEngine(engineCfg)
		hs := server.NewServer(eng, 0)
		ts := httptest.NewServer(hs.Handler())
		c := client.New(ts.URL, client.WithTimeout(10*time.Second))
		res, err := Run(ctx, c, wireScenarios(opt.Users)[name], opt)
		c.Close()
		ts.Close()
		hs.Close()
		eng.Close()
		if err != nil {
			return nil, err
		}
		res.Service, res.Mode = "engine-wire", "wire"
		rep.Scenarios = append(rep.Scenarios, res)
	}

	// Framed wire mode: the same ops through the same typed client, but
	// the hot paths ride one persistent multiplexed binary connection —
	// priced directly against the HTTP wire rows above.
	for _, name := range []string{"rate-batch-framed", "job-framed"} {
		eng := server.NewEngine(engineCfg)
		hs := server.NewServer(eng, 0)
		ts := httptest.NewServer(hs.Handler())
		fln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: framed listen: %w", err)
		}
		go hs.ServeFrames(fln)
		c := client.New(ts.URL, client.WithTimeout(10*time.Second),
			client.WithFramed(fln.Addr().String()))
		res, err := Run(ctx, c, framedWireScenarios(opt.Users)[name], opt)
		c.Close()
		ts.Close()
		hs.Close()
		eng.Close()
		if err != nil {
			return nil, err
		}
		res.Service, res.Mode = "engine-framed", "framed"
		rep.Scenarios = append(rep.Scenarios, res)
	}

	// Multi-node wire mode: the same batched ingest through one node of
	// a two-node deployment, pricing the proxy hop and the synchronous
	// replica ship against rate-batch-wire above.
	res, err = NodeWire(ctx, opt)
	if err != nil {
		return nil, err
	}
	rep.Scenarios = append(rep.Scenarios, res)

	// And the framed twin: every hop — client ingest, proxy, replication
	// ship — on persistent framed connections.
	res, err = NodeWireFramed(ctx, opt)
	if err != nil {
		return nil, err
	}
	rep.Scenarios = append(rep.Scenarios, res)

	// The adversarial row: rating ingest measured while an admission-
	// bounded server sheds a 10x read flood. Its shed_total > 0 is what
	// Compare uses to insist the gate keeps engaging.
	res, err = Overload(ctx, opt)
	if err != nil {
		return nil, err
	}
	res.Service, res.Mode = "engine-wire", "wire"
	rep.Scenarios = append(rep.Scenarios, res)
	return rep, nil
}
