package cluster

import (
	"time"

	"hyrec/internal/server"
)

// HTTPServer is the cluster front-end. Because *Cluster implements
// server.Service (and every capability interface the mux probes for),
// the cluster is served by the same shared mux as a single engine — the
// per-endpoint fan-out handlers this package used to carry are gone:
// routing to the owning partition happens inside the Cluster's Service
// methods, and cookie minting, presence, stats aggregation and the /v1
// batch protocol all come from internal/server.
type HTTPServer = server.HTTPServer

// NewHTTPServer wraps cluster with the shared web API. If rotateEvery >
// 0, every partition rotates its anonymous mapping on that period once
// Start is called.
func NewHTTPServer(cluster *Cluster, rotateEvery time.Duration) *HTTPServer {
	return server.NewServer(cluster, rotateEvery)
}
