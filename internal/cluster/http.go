package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/wire"
)

// HTTPServer exposes a Cluster over the paper's web API (Table 1) by
// fanning requests out to one server.HTTPServer per partition:
//
//	GET  /online?uid=U           → routed to U's partition
//	GET/POST /neighbors          → routed to the partition that minted the
//	                               result's pseudonyms
//	POST /rate?uid=U&item=I      → routed to U's partition
//	GET  /recommendations?uid=U  → routed to U's partition
//	GET  /stats                  → aggregated over all partitions
//	GET  /healthz                → liveness
//
// Requests without identification get a cluster-minted user ID and the
// identification cookie, exactly like the single-engine front-end — the
// cluster mints centrally so the fresh ID is registered on its owning
// partition before the request is forwarded.
type HTTPServer struct {
	cluster *Cluster
	subs    []*server.HTTPServer
	routes  []http.Handler

	mintMu sync.Mutex
	mint   *rand.Rand
}

// NewHTTPServer wraps cluster. If rotateEvery > 0, each partition rotates
// its anonymous mapping on that period once Start is called.
func NewHTTPServer(cluster *Cluster, rotateEvery time.Duration) *HTTPServer {
	s := &HTTPServer{
		cluster: cluster,
		subs:    make([]*server.HTTPServer, cluster.NumPartitions()),
		routes:  make([]http.Handler, cluster.NumPartitions()),
		mint:    rand.New(rand.NewSource(cluster.Config().Seed + 7919)),
	}
	for i := range s.subs {
		s.subs[i] = server.NewHTTPServer(cluster.Engine(i), rotateEvery)
		s.routes[i] = s.subs[i].Handler()
	}
	return s
}

// Start launches every partition's anonymiser-rotation loop.
func (s *HTTPServer) Start() {
	for _, sub := range s.subs {
		sub.Start()
	}
}

// Close stops background work on every partition. Safe to call multiple
// times.
func (s *HTTPServer) Close() {
	for _, sub := range s.subs {
		sub.Close()
	}
}

// Handler returns the cluster route table.
func (s *HTTPServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/online", s.handleByUser)
	mux.HandleFunc("/online/", s.handleByUser)
	mux.HandleFunc("/rate", s.handleByUser)
	mux.HandleFunc("/recommendations", s.handleByUser)
	mux.HandleFunc("/neighbors", s.handleNeighbors)
	mux.HandleFunc("/neighbors/", s.handleNeighbors)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleByUser routes a user-addressed endpoint (/online, /rate,
// /recommendations) to the owning partition. /online without
// identification mints a fresh cluster-wide user ID and sets the cookie.
func (s *HTTPServer) handleByUser(w http.ResponseWriter, r *http.Request) {
	uid, known, err := server.UIDFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !known {
		if r.URL.Path != "/online" && r.URL.Path != "/online/" {
			http.Error(w, "missing uid (no ?uid parameter or "+server.UIDCookieName+" cookie)", http.StatusBadRequest)
			return
		}
		uid = s.mintUser()
		server.SetUIDCookie(w, uid)
	}
	s.forward(s.cluster.Partition(uid), uid, w, r)
}

// forward hands the request to partition part's front-end with uid pinned
// into the query string, so the partition never re-mints or re-resolves.
func (s *HTTPServer) forward(part int, uid core.UserID, w http.ResponseWriter, r *http.Request) {
	r2 := r.Clone(r.Context())
	q := r2.URL.Query()
	q.Set("uid", strconv.FormatUint(uint64(uid), 10))
	r2.URL.RawQuery = q.Encode()
	s.routes[part].ServeHTTP(w, r2)
}

// handleNeighbors routes a widget result to the partition whose
// anonymiser minted its pseudonyms, then replays it against that
// partition's front-end so per-partition bookkeeping (last
// recommendations, presence) stays consistent.
func (s *HTTPServer) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	var res wire.Result
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		body, err = io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "read result body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := json.Unmarshal(body, &res); err != nil {
			http.Error(w, fmt.Sprintf("bad result body: %v", err), http.StatusBadRequest)
			return
		}
	} else {
		q := r.URL.Query()
		uid64, err := strconv.ParseUint(q.Get("uid"), 10, 32)
		if err != nil {
			http.Error(w, "bad uid", http.StatusBadRequest)
			return
		}
		epoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)
		res = wire.Result{UID: uint32(uid64), Epoch: epoch}
	}

	_, u, ok := s.cluster.route(&res)
	if !ok {
		http.Error(w, ErrUnroutable.Error(), http.StatusGone)
		return
	}
	r2 := r.Clone(r.Context())
	if body != nil {
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
	}
	s.routes[s.cluster.Partition(u)].ServeHTTP(w, r2)
}

// handleStats aggregates bandwidth and table counters over all
// partitions, and reports the per-partition user split so an operator can
// see routing balance at a glance.
func (s *HTTPServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	var jsonBytes, gzipBytes, resultBytes, messages, users, knn int64
	perPart := make([]int64, s.cluster.NumPartitions())
	for i := 0; i < s.cluster.NumPartitions(); i++ {
		e := s.cluster.Engine(i)
		m := e.Meter()
		jsonBytes += m.JSONBytes()
		gzipBytes += m.GzipBytes()
		resultBytes += m.ResultBytes()
		messages += m.Messages()
		n := int64(e.Profiles().Len())
		perPart[i] = n
		users += n
		knn += int64(e.KNN().Len())
	}
	w.Header().Set("Content-Type", "application/json")
	stats := map[string]any{
		"partitions":     s.cluster.NumPartitions(),
		"json_bytes":     jsonBytes,
		"gzip_bytes":     gzipBytes,
		"result_bytes":   resultBytes,
		"messages":       messages,
		"users":          users,
		"users_per_part": perPart,
		"knn_entries":    knn,
	}
	if err := json.NewEncoder(w).Encode(stats); err != nil {
		return
	}
}

// mintUser allocates a user ID unknown to every partition and registers
// it on its owning partition, so concurrent mints cannot collide and the
// forwarded request finds the user already present.
func (s *HTTPServer) mintUser() core.UserID {
	s.mintMu.Lock()
	defer s.mintMu.Unlock()
	for {
		id := core.UserID(s.mint.Uint32())
		if id == 0 || s.cluster.KnownUser(id) {
			continue
		}
		s.cluster.Engine(s.cluster.Partition(id)).Profiles().Put(core.NewProfile(id))
		return id
	}
}
