package cluster

import (
	"context"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
	"hyrec/internal/widget"
)

// System runs the complete HyRec loop over a Cluster — routed server
// orchestration plus a simulated browser widget per request — behind the
// replay.System interface, so the same traces that drive the
// single-engine System (and the baselines) drive the cluster, and
// recall/similarity comparisons are apples-to-apples.
type System struct {
	cluster *Cluster
	widget  *widget.Widget
	// rotateEvery > 0 rotates every partition's anonymiser on virtual-time
	// boundaries during a replay.
	rotateEvery time.Duration
	rotateNext  time.Duration
}

var _ replay.System = (*System)(nil)

// NewSystem wraps a cluster and a widget for trace replay. A nil widget
// gets the default (cosine similarity, laptop device).
func NewSystem(c *Cluster, w *widget.Widget) *System {
	if w == nil {
		w = widget.New()
	}
	return &System{cluster: c, widget: w}
}

// SetRotation makes Tick advance every partition's anonymous mapping each
// period of virtual time (0 disables).
func (s *System) SetRotation(period time.Duration) {
	s.rotateEvery = period
	s.rotateNext = period
}

// Cluster exposes the underlying cluster (partitions, meters, tables).
func (s *System) Cluster() *Cluster { return s.cluster }

// Name implements replay.System.
func (s *System) Name() string { return "hyrec-cluster" }

// Rate implements replay.System: a rating is a client request — the
// profile updates on the owning partition and a full personalization job
// round-trips through the widget.
func (s *System) Rate(_ time.Duration, r core.Rating) {
	s.cluster.Rate(context.Background(), r.User, r.Item, r.Liked)
	s.cycle(r.User)
}

// Recommend implements replay.System: a recommendation request also runs
// one KNN iteration (HyRec is an online protocol).
func (s *System) Recommend(_ time.Duration, u core.UserID, n int) []core.ItemID {
	recs := s.cycle(u)
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// Neighbors implements replay.System.
func (s *System) Neighbors(u core.UserID) []core.UserID {
	hood, _ := s.cluster.Neighbors(context.Background(), u)
	return hood
}

// Tick implements replay.System.
func (s *System) Tick(t time.Duration) {
	if s.rotateEvery <= 0 {
		return
	}
	for s.rotateNext <= t {
		s.cluster.RotateAnonymizers()
		s.rotateNext += s.rotateEvery
	}
}

// cycle performs one full client-cluster interaction for u and returns
// the recommendations the widget computed.
func (s *System) cycle(u core.UserID) []core.ItemID {
	ctx := context.Background()
	job, err := s.cluster.Job(ctx, u)
	if err != nil {
		return nil
	}
	res, _ := s.widget.Execute(job)
	recs, err := s.cluster.ApplyResult(ctx, res)
	if err != nil {
		return nil
	}
	return recs
}

// ProfileSource adapts the cluster's (disjoint) profile tables for the
// metrics package, so ideal-KNN and view-similarity computations see the
// global population.
func (s *System) ProfileSource() metrics.ProfileSource {
	return clusterSource{cluster: s.cluster}
}

type clusterSource struct {
	cluster *Cluster
}

var _ metrics.ProfileSource = clusterSource{}

// Profile implements metrics.ProfileSource.
func (c clusterSource) Profile(u core.UserID) core.Profile { return c.cluster.Profile(u) }

// Users implements metrics.ProfileSource.
func (c clusterSource) Users() []core.UserID { return c.cluster.Users() }
