package cluster

import (
	"testing"

	"hyrec/internal/core"
)

// TestRingDeterminism pins the ring as a pure function of
// (partitions, vnodes): two independently built rings agree on every
// user — the property snapshot replay and cross-process routing rely on.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(5, DefaultVNodes)
	b := NewRing(5, DefaultVNodes)
	for u := core.UserID(1); u <= 10_000; u++ {
		if a.Owner(u) != b.Owner(u) {
			t.Fatalf("ring not deterministic: user %d owned by %d and %d", u, a.Owner(u), b.Owner(u))
		}
	}
}

// TestRingOwnersInRange: every user maps to a live partition, for a
// sweep of partition counts.
func TestRingOwnersInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		r := NewRing(n, DefaultVNodes)
		for u := core.UserID(1); u <= 5_000; u++ {
			if p := r.Owner(u); p < 0 || p >= n {
				t.Fatalf("ring(%d): user %d maps to dead partition %d", n, u, p)
			}
		}
	}
}

// TestRingStableUnderScale is the consistent-hashing property: growing
// the ring N→N+1 moves only the users the new partition stole (roughly
// 1/(N+1) of the population; never more than a small multiple of it),
// every moved user lands on the NEW partition, and nobody shuffles
// between surviving partitions. Shrinking is the mirror image: only the
// removed partition's users move, and no survivor-owned user changes
// hands.
func TestRingStableUnderScale(t *testing.T) {
	const users = 20_000
	for _, n := range []int{2, 4, 8} {
		small := NewRing(n, DefaultVNodes)
		big := NewRing(n+1, DefaultVNodes)
		moved := 0
		for u := core.UserID(1); u <= users; u++ {
			a, b := small.Owner(u), big.Owner(u)
			if a != b {
				moved++
				if b != n {
					t.Fatalf("grow %d→%d: user %d moved %d→%d, not to the new partition", n, n+1, u, a, b)
				}
			}
		}
		// Expect ~users/(n+1); allow [⅓×, 3×] of that for hash variance.
		want := users / (n + 1)
		if moved < want/3 || moved > 3*want {
			t.Fatalf("grow %d→%d moved %d users, want ≈%d (consistent hashing broken)", n, n+1, moved, want)
		}

		// Shrinking: only the removed partition's users move.
		for u := core.UserID(1); u <= users; u++ {
			a, b := big.Owner(u), small.Owner(u)
			if a != b && a != n {
				t.Fatalf("shrink %d→%d: user %d moved %d→%d but partition %d was not removed",
					n+1, n, u, a, b, a)
			}
		}
	}
}

// TestRingBalance: ownership stays within a reasonable band of uniform
// at the partition counts deployments actually run.
func TestRingBalance(t *testing.T) {
	const users = 50_000
	for _, n := range []int{2, 4, 8} {
		r := NewRing(n, DefaultVNodes)
		counts := make([]int, n)
		for u := core.UserID(1); u <= users; u++ {
			counts[r.Owner(u)]++
		}
		want := users / n
		for p, got := range counts {
			if got < want/2 || got > 2*want {
				t.Fatalf("ring(%d): partition %d owns %d of %d users (uniform ≈%d); badly skewed: %v",
					n, p, got, users, want, counts)
			}
		}
	}
}

// TestRingRoundTrip: because the ring is a pure function of the
// partition count, scaling N→M→N restores the original ownership of
// every user exactly.
func TestRingRoundTrip(t *testing.T) {
	n4a := NewRing(4, DefaultVNodes)
	_ = NewRing(7, DefaultVNodes) // the detour topology
	n4b := NewRing(4, DefaultVNodes)
	for u := core.UserID(1); u <= 10_000; u++ {
		if n4a.Owner(u) != n4b.Owner(u) {
			t.Fatalf("N→M→N ownership not restored for user %d", u)
		}
	}
}
