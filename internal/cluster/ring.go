package cluster

import (
	"fmt"
	"sort"

	"hyrec/internal/core"
)

// This file implements the consistent-hash ring that decides which
// partition owns which user. The previous topology was a fixed
// multiplicative hash `(u·φ) mod N`: perfectly balanced, but changing N
// remaps essentially every user, so a deployment sized for 1M users
// could not absorb 10M without a full restart and re-ingest. The ring
// makes the partition count a runtime property: when the cluster scales
// N→M, only the users whose arc changed hands move — in expectation
// K/max(N,M) of the population per partition added or removed — and
// everyone else keeps their engine, tables and caches untouched.
//
// Each partition projects DefaultVNodes virtual nodes onto a 64-bit
// ring; a user is owned by the partition whose virtual node is the
// first at or clockwise after the user's hash point. Virtual nodes keep
// the arcs fine-grained enough that ownership stays within a few
// percent of uniform even at small partition counts.
//
// The ring is a pure function of (partitions, vnodes): two processes —
// or two incarnations of the same process across a restart — that agree
// on those two integers agree on every user's owner. Snapshots
// therefore only stamp the topology parameters, never the point table,
// and the persist layer can replay any historical topology into the
// current one by re-routing each restored user through the live ring.

// DefaultVNodes is the number of virtual nodes each partition projects
// onto the ring. 64 keeps the max/min ownership ratio under ~1.3 for
// any partition count the lane registry admits, at a table cost of
// 16 bytes per vnode.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring and the
// partition that owns the arc ending at it.
type ringPoint struct {
	hash uint64
	part int32
}

// Ring maps users to partitions by consistent hashing. Immutable after
// construction; safe for unsynchronized concurrent use.
type Ring struct {
	points []ringPoint // sorted ascending by hash
	parts  int
	vnodes int
}

// NewRing builds the ring for n partitions with v virtual nodes each
// (v <= 0 selects DefaultVNodes). It panics on n < 1 (programmer
// error), mirroring cluster.New.
func NewRing(n, v int) *Ring {
	if n < 1 {
		panic(fmt.Sprintf("cluster: ring needs >= 1 partition, got %d", n))
	}
	if v <= 0 {
		v = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, n*v), parts: n, vnodes: v}
	for p := 0; p < n; p++ {
		for i := 0; i < v; i++ {
			r.points = append(r.points, ringPoint{
				hash: splitmix64(uint64(p)<<32 | uint64(i)),
				part: int32(p),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Partitions returns the number of partitions the ring routes over.
func (r *Ring) Partitions() int { return r.parts }

// VNodes returns the virtual-node count per partition.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the partition that owns u: the partition of the first
// virtual node at or clockwise after u's point (wrapping at the top of
// the ring).
func (r *Ring) Owner(u core.UserID) int {
	if r.parts == 1 {
		return 0
	}
	h := splitmix64(uint64(uint32(u)) | 1<<40)
	// First point with hash >= h; the ring wraps to points[0].
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].part)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mix used both for virtual-node placement and
// for user points. Vnode keys and user keys live in disjoint input
// ranges (bit 40 tags users), so a user can never land exactly on a
// vnode key by identifier coincidence.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
