package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// tctx is the context used by tests exercising the context-aware
// Service methods.
var tctx = context.Background()

func testConfig() server.Config {
	cfg := server.DefaultConfig()
	cfg.Seed = 42
	return cfg
}

// cycle runs one full Rate-free personalization round trip against the
// cluster and returns the recommendations.
func cycle(t *testing.T, c *Cluster, w *widget.Widget, u core.UserID) []core.ItemID {
	t.Helper()
	job, err := c.Job(tctx, u)
	if err != nil {
		t.Fatalf("Job(%d): %v", u, err)
	}
	res, _ := w.Execute(job)
	recs, err := c.ApplyResult(tctx, res)
	if err != nil {
		t.Fatalf("ApplyResult(%d): %v", u, err)
	}
	return recs
}

// TestSinglePartitionEquivalence pins the cluster's compatibility
// contract: a 1-partition cluster must produce bit-for-bit the same
// recommendations and neighborhoods as a plain engine under the same
// seed and workload.
func TestSinglePartitionEquivalence(t *testing.T) {
	cfg := testConfig()
	engine := server.NewEngine(cfg)
	clus := New(cfg, 1)
	w := widget.New()

	const users = 40
	for round := 0; round < 3; round++ {
		for u := core.UserID(1); u <= users; u++ {
			item := core.ItemID(uint32(u)*7 + uint32(round))
			engine.Rate(tctx, u, item, true)
			clus.Rate(tctx, u, item, true)

			ejob, err := engine.Job(tctx, u)
			if err != nil {
				t.Fatalf("engine Job(%d): %v", u, err)
			}
			eres, _ := w.Execute(ejob)
			erecs, err := engine.ApplyResult(tctx, eres)
			if err != nil {
				t.Fatalf("engine ApplyResult(%d): %v", u, err)
			}

			crecs := cycle(t, clus, w, u)
			if fmt.Sprint(erecs) != fmt.Sprint(crecs) {
				t.Fatalf("round %d user %d: recommendations diverged: engine=%v cluster=%v",
					round, u, erecs, crecs)
			}
			ehood, _ := engine.Neighbors(tctx, u)
			chood, _ := clus.Neighbors(tctx, u)
			if fmt.Sprint(ehood) != fmt.Sprint(chood) {
				t.Fatalf("round %d user %d: neighborhoods diverged: engine=%v cluster=%v",
					round, u, ehood, chood)
			}
		}
	}
}

// TestPartitionRoutingStableUnderChurn verifies that the user→partition
// mapping is a pure function of the user ID: it never changes as other
// users join, and the population spreads roughly evenly.
func TestPartitionRoutingStableUnderChurn(t *testing.T) {
	c := New(testConfig(), 4)

	const existing = 500
	before := make(map[core.UserID]int, existing)
	for u := core.UserID(1); u <= existing; u++ {
		p := c.Partition(u)
		if p < 0 || p >= 4 {
			t.Fatalf("Partition(%d) = %d out of range", u, p)
		}
		before[u] = p
		c.Rate(tctx, u, core.ItemID(u), true)
	}

	// Churn: thousands of new users join (and rate, so they register).
	for u := core.UserID(10_000); u < 12_000; u++ {
		c.Rate(tctx, u, core.ItemID(u), true)
	}

	counts := make([]int, 4)
	for u, want := range before {
		got := c.Partition(u)
		if got != want {
			t.Fatalf("Partition(%d) moved %d → %d after churn", u, want, got)
		}
		counts[got]++
	}
	for p, n := range counts {
		if n < existing/8 || n > existing/2 {
			t.Errorf("partition %d owns %d/%d existing users; routing is badly skewed", p, n, existing)
		}
	}
}

// TestProfilesStayDisjoint verifies that each user's profile is stored
// only on the owning partition — foreign profiles are read through, never
// copied — so cluster-wide user counts are exact sums.
func TestProfilesStayDisjoint(t *testing.T) {
	c := New(testConfig(), 4)
	w := widget.New()
	const users = 200
	for u := core.UserID(1); u <= users; u++ {
		c.Rate(tctx, u, core.ItemID(u%17), true)
		cycle(t, c, w, u)
	}
	for u := core.UserID(1); u <= users; u++ {
		owner := c.Partition(u)
		for i := 0; i < c.NumPartitions(); i++ {
			known := c.Engine(i).Profiles().Known(u)
			if known != (i == owner) {
				t.Fatalf("user %d: partition %d Known=%v (owner %d)", u, i, known, owner)
			}
		}
	}
	if got := c.Len(); got != users {
		t.Fatalf("cluster Len = %d, want %d", got, users)
	}
	if got := len(c.Users()); got != users {
		t.Fatalf("len(Users) = %d, want %d", got, users)
	}
}

// TestCrossPartitionExchange verifies the tentpole mechanism: candidate
// sets contain users owned by sibling partitions, and those candidates
// carry their real (non-empty) profiles resolved from the owning
// partition's table.
func TestCrossPartitionExchange(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAnonymizer = true // inspect real IDs inside jobs
	c := New(cfg, 4)

	const users = 100
	for u := core.UserID(1); u <= users; u++ {
		for j := 0; j < 5; j++ {
			c.Rate(tctx, u, core.ItemID(uint32(u)%20+uint32(j)), true)
		}
	}

	foreign, foreignWithProfile := 0, 0
	for u := core.UserID(1); u <= users; u++ {
		job, err := c.Job(tctx, u)
		if err != nil {
			t.Fatalf("Job(%d): %v", u, err)
		}
		home := c.Partition(u)
		for _, cand := range job.Candidates {
			cu := core.UserID(cand.ID)
			if c.Partition(cu) == home {
				continue
			}
			foreign++
			if len(cand.Liked) > 0 {
				foreignWithProfile++
			}
		}
	}
	if foreign == 0 {
		t.Fatal("no cross-partition candidates in any job; exchange is not happening")
	}
	if foreignWithProfile == 0 {
		t.Fatal("cross-partition candidates all have empty profiles; foreign profile resolution is broken")
	}
}

// TestExchangeReachesKNN verifies foreign users actually enter
// neighborhoods: after a few rounds, at least one user's KNN row contains
// a user owned by a sibling partition.
func TestExchangeReachesKNN(t *testing.T) {
	c := New(testConfig(), 4)
	w := widget.New()
	const users = 100
	// Similar users land in different partitions: overlapping profiles.
	for u := core.UserID(1); u <= users; u++ {
		for j := 0; j < 6; j++ {
			c.Rate(tctx, u, core.ItemID(uint32(u)%5+uint32(j)), true)
		}
	}
	for round := 0; round < 3; round++ {
		for u := core.UserID(1); u <= users; u++ {
			cycle(t, c, w, u)
		}
	}
	crossEdges := 0
	for u := core.UserID(1); u <= users; u++ {
		hood, _ := c.Neighbors(tctx, u)
		for _, v := range hood {
			if c.Partition(v) != c.Partition(u) {
				crossEdges++
			}
		}
	}
	if crossEdges == 0 {
		t.Fatal("no cross-partition KNN edges after 3 rounds; the exchange is not improving neighborhoods")
	}
}

// TestExchangeAblation verifies SetExchange(0) really isolates
// partitions: candidate sets then never reference foreign users.
func TestExchangeAblation(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAnonymizer = true
	c := New(cfg, 4)
	c.SetExchange(0)
	const users = 80
	for u := core.UserID(1); u <= users; u++ {
		c.Rate(tctx, u, core.ItemID(u%13), true)
	}
	for u := core.UserID(1); u <= users; u++ {
		job, err := c.Job(tctx, u)
		if err != nil {
			t.Fatalf("Job(%d): %v", u, err)
		}
		for _, cand := range job.Candidates {
			if c.Partition(core.UserID(cand.ID)) != c.Partition(u) {
				t.Fatalf("user %d: foreign candidate %d with exchange disabled", u, cand.ID)
			}
		}
	}
}

// TestApplyResultRouting verifies results reach the partition whose
// anonymiser minted their pseudonyms, and that results from evicted
// epochs are rejected as unroutable.
func TestApplyResultRouting(t *testing.T) {
	c := New(testConfig(), 4)
	w := widget.New()
	const users = 60
	for u := core.UserID(1); u <= users; u++ {
		c.Rate(tctx, u, core.ItemID(u%9), true)
		cycle(t, c, w, u)
	}
	for u := core.UserID(1); u <= users; u++ {
		hood, _ := c.Neighbors(tctx, u)
		if len(hood) == 0 && c.Len() > 1 {
			// At least the second round should find neighbors for everyone.
			job, _ := c.Job(tctx, u)
			res, _ := w.Execute(job)
			if _, err := c.ApplyResult(tctx, res); err != nil {
				t.Fatalf("second-round ApplyResult(%d): %v", u, err)
			}
		}
	}

	// A result minted now must become unroutable once its epoch is evicted
	// (each anonymiser keeps only the current and previous epoch).
	u := core.UserID(1)
	job, err := c.Job(tctx, u)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := w.Execute(job)
	c.RotateAnonymizers()
	c.RotateAnonymizers()
	if _, err := c.ApplyResult(tctx, res); err == nil {
		t.Fatal("ApplyResult accepted a result from an evicted epoch")
	}
}

// TestConcurrentRateJob hammers a 4-partition cluster with concurrent
// full cycles across partition boundaries while anonymisers rotate; run
// under -race it doubles as the cluster's data-race check. Results whose
// epoch was evicted by two concurrent rotations are legitimately rejected
// (the single-engine contract), so the test tolerates rejections but
// requires the vast majority of cycles to land.
func TestConcurrentRateJob(t *testing.T) {
	c := New(testConfig(), 4)
	w := widget.New()
	const (
		workers = 8
		ops     = 150
	)
	var wg sync.WaitGroup
	var applied, rejected atomic.Int64
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				u := core.UserID(uint32(g*ops+i)%97 + 1)
				c.Rate(tctx, u, core.ItemID(uint32(i)%31), i%5 != 0)
				job, err := c.Job(tctx, u)
				if err != nil {
					errs <- fmt.Errorf("Job(%d): %w", u, err)
					return
				}
				res, _ := w.Execute(job)
				switch _, err := c.ApplyResult(tctx, res); {
				case err == nil:
					applied.Add(1)
				case errors.Is(err, ErrUnroutable), errors.Is(err, server.ErrStaleEpoch):
					rejected.Add(1) // evicted epoch under concurrent rotation
				default:
					errs <- fmt.Errorf("ApplyResult(%d): %w", u, err)
					return
				}
				if i%10 == 0 {
					c.RotateAnonymizers()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	total := applied.Load() + rejected.Load()
	if applied.Load() < total*9/10 {
		t.Fatalf("only %d/%d cycles applied; rotation rejections dominate", applied.Load(), total)
	}
}

// TestPartitionSeedsDiffer guards the seed-lane derivation: sibling
// engines must not share RNG streams, and partition 0 must keep the
// configured seed (the 1-partition equivalence depends on it).
func TestPartitionSeedsDiffer(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, 4)
	seen := make(map[int64]bool)
	for i := 0; i < 4; i++ {
		s := c.Engine(i).Config().Seed
		if seen[s] {
			t.Fatalf("duplicate partition seed %d", s)
		}
		seen[s] = true
	}
	if got := c.Engine(0).Config().Seed; got != cfg.Seed {
		t.Fatalf("partition 0 seed = %d, want the configured %d", got, cfg.Seed)
	}
}

// TestUnroutableResult verifies garbage results are rejected rather than
// applied to an arbitrary partition.
func TestUnroutableResult(t *testing.T) {
	c := New(testConfig(), 4)
	c.Rate(tctx, 1, 1, true)
	res := &wire.Result{UID: 12345, Epoch: 99}
	if _, err := c.ApplyResult(tctx, res); err == nil {
		t.Fatal("ApplyResult accepted a result with an unknown epoch")
	}
}
