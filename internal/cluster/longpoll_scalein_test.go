package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

// TestWorkerLongPollSurvivesScaleIn: a worker long-poll parked across a
// scale-in must be served a job from the post-migration topology within
// its wait window — the evicted users are re-marked stale on their new
// partitions, so the poll has work to pick up — rather than answering an
// early idle 204 because the dispatcher woke mid-Evict.
func TestWorkerLongPollSurvivesScaleIn(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.K = 4
	cfg.R = 4
	cfg.LeaseTTL = 5 * time.Second
	cfg.LeaseRetries = 1
	cfg.FallbackWorkers = 0
	cfg.FallbackBudget = nil
	cl := New(cfg, 4)
	defer cl.Close()
	ctx := context.Background()
	for u := core.UserID(1); u <= 300; u++ {
		for j := 0; j < 3; j++ {
			if err := cl.Rate(ctx, u, core.ItemID((int(u)+j)%12), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Drain the staleness queue so the parked poll below cannot be
	// satisfied by pre-scale work (leases stay outstanding).
	for {
		dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		job, err := cl.NextJob(dctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
	}

	hs := server.NewServer(cl, 0)
	ts := httptest.NewServer(hs.Handler())
	defer func() { ts.Close(); hs.Close() }()

	// Launch the scale-in and park the long-poll once the migration's
	// move stream has started (the mid-Evict window).
	scaleStarted := make(chan struct{})
	started := false
	cl.moveHook = func() {
		if !started {
			started = true
			close(scaleStarted)
		}
	}
	scaleDone := make(chan error, 1)
	go func() { scaleDone <- cl.Scale(ctx, 2) }()
	<-scaleStarted

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/job?worker=1&wait=5s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll across scale-in: status %d after %v, want 200 (migration re-marks moved users stale)",
			resp.StatusCode, elapsed)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("long-poll took %v to pick up post-migration work", elapsed)
	}
	if err := <-scaleDone; err != nil {
		t.Fatal(err)
	}
}
