package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hyrec/internal/core"
	"hyrec/internal/server"
)

// This file is the live-resharding coordinator: Cluster.Scale changes
// the partition count at runtime by streaming only the moved users'
// state between engines, while the rest of the population — and all
// in-flight traffic — keeps serving.
//
// The protocol, in publish order:
//
//  1. Build the target ring and the engine set (new partitions are
//     created with exactly the seed and lease lane a static cluster of
//     the target size would give them; removed partitions are the
//     highest indices, so survivors keep their index, sampler and
//     resolver unchanged).
//  2. Diff ownership: every user whose ring arc changed hands enters
//     the `moving` set — by the ring's construction that is ~1/N of the
//     population per partition added or removed, not everyone.
//  3. Publish the new topology atomically. From this instant ratings
//     route to the new owner (Cluster.Rate additionally re-checks the
//     topology after each write, closing the race with writers that
//     pinned the old snapshot), jobs are assembled by the new owner,
//     and results for moving users double-route: resolved against the
//     minting partition's anonymiser, folded into the new owner.
//  4. Stream state per source partition in bounded batches: export
//     from the source, merge-import into the destination (opinions the
//     destination has already recorded win — they are newer), evict
//     the source scheduler's lease so in-flight jobs drain, and delete
//     the source copy.
//  5. Close removed partitions (now empty), clear the moving set, and
//     advance every partition's anonymiser one epoch: pseudonyms minted
//     before the migration stay resolvable for exactly one more
//     rotation on partitions that kept their users, while a straggler
//     result for a moved user is *rejected* (server.ErrMoved — the
//     minting partition still resolves it, but ownership has moved)
//     rather than silently misrouted.
//
// Scale is synchronous and serialized; it returns once the migration
// has fully completed and /stats reports migrating:false.

// laneStep is the modulus of the lease-lane registry: partition lanes
// are allocated monotonically and never reused, so a lease minted by a
// removed partition can only ever report unknown — with the old
// (lease-1) mod N rule, a scale event would have silently remapped
// every outstanding lease onto the wrong scheduler. 2^20 lanes bound a
// deployment to ~one million scale-event partition creations over its
// lifetime, far beyond any realistic churn.
const laneStep = 1 << 20

// migrateBatch bounds how many users move per export/import/delete
// step, keeping the coordinator's working set small and each source
// partition's interference window short.
const migrateBatch = 256

// Scale reshapes the cluster to n partitions, streaming moved users'
// state live. It is a no-op when n equals the current partition count.
// The context is honoured only up to the point of no return (before the
// new topology is published); once publication happens the migration
// runs to completion so the cluster is never left half-routed.
func (c *Cluster) Scale(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("cluster: scale target must be >= 1, got %d", n)
	}
	c.scaleMu.Lock()
	defer c.scaleMu.Unlock()
	if c.closed {
		return errors.New("cluster: scale after Close")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	old := c.snap()
	if n == len(old.parts) {
		return nil
	}
	c.migrating.Store(true)
	defer c.migrating.Store(false)

	// Tombstones from the previous migration have served their purpose
	// (their racing writers drained at least one full migration ago);
	// purge them so the per-shard maps stay bounded by one migration's
	// move set.
	for _, e := range old.parts {
		e.ClearTombstones()
	}

	ring := NewRing(n, old.ring.VNodes())
	keep := min(n, len(old.parts))
	parts := make([]*server.Engine, n)
	copy(parts, old.parts[:keep])
	laneOf := make([]uint64, n)
	copy(laneOf, old.laneOf[:keep])
	lanes := make(map[uint64]int, n)
	for i := 0; i < keep; i++ {
		lanes[laneOf[i]] = i
	}
	for i := len(old.parts); i < n; i++ {
		lane := c.nextLane
		c.nextLane++
		parts[i] = c.newPartition(i, lane)
		lanes[lane] = i
		laneOf[i] = lane
	}
	var removed []*server.Engine // partitions dropped by a scale-in
	if n < len(old.parts) {
		removed = old.parts[n:]
	}
	// Mid-move, retired partitions stay addressable: their engines ride
	// along in topology.retired and their lease lanes stay registered
	// (mapped to their old, now out-of-range indices, which engineAt
	// resolves), so in-flight jobs they minted can still be resolved,
	// double-routed and acked. The final topology drops both.
	migLanes := lanes
	if len(removed) > 0 {
		migLanes = make(map[uint64]int, len(lanes)+len(removed))
		for lane, pi := range lanes {
			migLanes[lane] = pi
		}
		for i := n; i < len(old.parts); i++ {
			migLanes[old.laneOf[i]] = i
		}
	}

	// Diff ownership under the new ring. Only users whose arc changed
	// hands move; the ring guarantees that is ~1/max(N,M) of each
	// surviving partition's population (all of a removed partition's).
	moving := diffOwnership(old.parts, ring, nil)

	// Point of no return: publish. Every operation from here routes
	// over the new ring; moving users double-route.
	c.topo.Store(&topology{ring: ring, parts: parts, lanes: migLanes, laneOf: laneOf, moving: moving, retired: removed})

	// Close the diff race: a user whose very first rating or
	// registration landed on an old-ring owner while the scan above was
	// running is absent from `moving` (and her writer's topology
	// re-check fired before the publish, so nothing re-applied her
	// elsewhere). Re-scan now that routing has flipped; stragglers join
	// the move set via a fresh publish. Anything registered after this
	// second scan necessarily observes the published topology on its
	// re-check and re-applies itself on the new owner.
	if extra := diffOwnership(old.parts, ring, moving); len(extra) > 0 {
		merged := make(map[core.UserID]moveTarget, len(moving)+len(extra))
		for u, mt := range moving {
			merged[u] = mt
		}
		for u, mt := range extra {
			merged[u] = mt
		}
		moving = merged
		c.topo.Store(&topology{ring: ring, parts: parts, lanes: migLanes, laneOf: laneOf, moving: moving, retired: removed})
	}

	if c.moveHook != nil {
		// Test seam: runs with the new topology published but no state
		// streamed yet — the widest mid-move window.
		c.moveHook()
	}

	// Stream state, grouped by source partition, in bounded batches.
	byFrom := make(map[int][]core.UserID)
	for u, mt := range moving {
		byFrom[int(mt.from)] = append(byFrom[int(mt.from)], u)
	}
	sources := make([]int, 0, len(byFrom))
	for from := range byFrom {
		sources = append(sources, from)
	}
	sort.Ints(sources)
	for _, from := range sources {
		src := old.parts[from]
		users := byFrom[from]
		sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
		for len(users) > 0 {
			batch := users[:min(migrateBatch, len(users))]
			users = users[len(batch):]
			c.moveBatch(src, parts, moving, batch)
		}
	}

	// Removed partitions are now empty; stop their schedulers and
	// fallback pools. In-flight readers holding the old snapshot may
	// still consult their (drained) tables — Close only stops
	// background work, it never invalidates reads.
	for _, e := range removed {
		e.Close()
	}

	// Migration complete: clear the moving set…
	c.topo.Store(&topology{ring: ring, parts: parts, lanes: lanes, laneOf: laneOf})

	// …and bump every partition's anonymiser epoch. In-flight jobs for
	// users that did not move stay resolvable (their epoch is now the
	// previous one); a straggler result for a moved user surfaces
	// server.ErrMoved instead of being folded into a partition that no
	// longer owns the user.
	for _, e := range parts {
		e.RotateAnonymizer()
	}
	return nil
}

// diffOwnership scans each engine's roster for users the ring assigns
// to a different partition, skipping entries already in `have` (nil for
// the first pass).
func diffOwnership(parts []*server.Engine, ring *Ring, have map[core.UserID]moveTarget) map[core.UserID]moveTarget {
	out := make(map[core.UserID]moveTarget)
	for i, e := range parts {
		for _, u := range e.Profiles().Users() {
			if _, done := have[u]; done {
				continue
			}
			if j := ring.Owner(u); j != i {
				out[u] = moveTarget{from: int32(i), to: int32(j)}
			}
		}
	}
	return out
}

// moveBatch streams one batch of users from src to their destination
// engines: export, merge-import, scheduler eviction, source delete.
func (c *Cluster) moveBatch(src *server.Engine, parts []*server.Engine, moving map[core.UserID]moveTarget, batch []core.UserID) {
	// Group the batch by destination so each ImportUsers call is one
	// slice per target engine.
	byTo := make(map[int32][]core.UserID)
	for _, u := range batch {
		byTo[moving[u].to] = append(byTo[moving[u].to], u)
	}
	for to, users := range byTo {
		dst := parts[to]
		states := src.ExportUsers(users)
		dst.ImportUsers(states)
		for _, u := range users {
			// Drain the source's lease/refresh cycle. ImportUsers has
			// already queued a refresh on the destination, so owed work
			// is never dropped, only re-homed.
			if s := src.Scheduler(); s != nil {
				s.Evict(u)
			}
		}
		src.RemoveUsers(users)
		c.usersMoved.Add(int64(len(states)))
	}
}
