package cluster

import (
	"hyrec/internal/core"
	"hyrec/internal/server"
)

// PeerSampler supplies cross-partition exchange candidates: users owned
// by partitions other than home, drawn (approximately) uniformly. It is
// the cluster analogue of the random-users component of the §3.1 rule —
// the exploration channel that keeps a partitioned KNN graph connected.
// EnginePeers is the in-process implementation; a networked deployment
// would back it with a gossip or RPC layer.
type PeerSampler interface {
	// SamplePeers returns up to n users owned by partitions other than
	// home, excluding `exclude`. Fewer than n may be returned when the
	// sibling rosters are small.
	SamplePeers(home int, n int, exclude core.UserID) []core.UserID
}

// EnginePeers draws exchange candidates directly from the sibling
// engines' rosters — the implementation used when all partitions live in
// one process.
type EnginePeers struct {
	// Cluster is the cluster whose sibling rosters are sampled.
	Cluster *Cluster
}

var _ PeerSampler = EnginePeers{}

// SamplePeers implements PeerSampler: a first pass spreads the budget
// evenly over the sibling partitions (starting after home, each sibling
// drawing from its own seeded RNG), and a second pass redistributes any
// shortfall — so a small or empty sibling does not starve the exchange
// while other rosters still have users to offer.
func (p EnginePeers) SamplePeers(home, n int, exclude core.UserID) []core.UserID {
	// One topology snapshot for the whole draw: a concurrent Scale
	// cannot change the sibling set mid-pass. home may exceed the
	// snapshot's partition count transiently when a scale-in removed the
	// sampling partition; the modulo arithmetic below keeps the draw
	// well-defined for the engine's remaining in-flight jobs.
	t := p.Cluster.snap()
	siblings := len(t.parts) - 1
	if siblings < 1 || n <= 0 {
		return nil
	}
	out := make([]core.UserID, 0, n)
	seen := make(map[core.UserID]struct{}, n)
	take := func(part, want int) {
		for _, u := range t.parts[part].RandomUsers(want, exclude) {
			if _, dup := seen[u]; dup {
				continue
			}
			seen[u] = struct{}{}
			out = append(out, u)
		}
	}
	for pass := 0; pass < 2 && len(out) < n; pass++ {
		for d := 1; d <= siblings && len(out) < n; d++ {
			want := n - len(out)
			if pass == 0 {
				// Even share over the siblings not yet visited this pass.
				if left := siblings - d + 1; left > 1 {
					want = (want + left - 1) / left
				}
			}
			take((home+d)%len(t.parts), want)
		}
	}
	return out
}

// exchangeSampler decorates a partition's default §3.1 sampler with
// cross-partition candidate exchange: the local candidate set is topped
// up with peers drawn from sibling partitions, deduplicated against the
// local picks. With a single partition (or a zero exchange budget) it is
// transparent — the output is exactly the base sampler's.
type exchangeSampler struct {
	base    server.Sampler
	cluster *Cluster
	home    int
}

var (
	_ server.Sampler     = (*exchangeSampler)(nil)
	_ server.ViewSampler = (*exchangeSampler)(nil)
)

// Sample implements server.Sampler.
func (s *exchangeSampler) Sample(u core.UserID, k int) []core.UserID {
	return s.topUp(s.base.Sample(u, k), u)
}

// SampleView implements server.ViewSampler: the partition-local §3.1
// candidates come from the pinned view (lock-free), and the exchange
// top-up reads sibling rosters through their own published views (see
// Engine.RandomUsers). The home partition's engine probes for this
// interface, so a cluster partition assembles jobs on the snapshot read
// path exactly like a standalone engine.
func (s *exchangeSampler) SampleView(v *server.TableView, u core.UserID, k int) []core.UserID {
	var out []core.UserID
	if vs, ok := s.base.(server.ViewSampler); ok {
		out = vs.SampleView(v, u, k)
	} else {
		out = s.base.Sample(u, k)
	}
	return s.topUp(out, u)
}

// topUp appends cross-partition exchange candidates to the local set,
// deduplicated against the local picks.
func (s *exchangeSampler) topUp(out []core.UserID, u core.UserID) []core.UserID {
	n := s.cluster.exchange
	if n <= 0 || s.cluster.NumPartitions() < 2 {
		return out
	}
	peers := s.cluster.peers.SamplePeers(s.home, n, u)
	if len(peers) == 0 {
		return out
	}
	seen := make(map[core.UserID]struct{}, len(out)+len(peers))
	seen[u] = struct{}{}
	for _, v := range out {
		seen[v] = struct{}{}
	}
	for _, v := range peers {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
