package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/widget"
)

// TestOnePartitionRingEquivalence pins the elastic topology's
// compatibility floor: a 1-partition ring cluster serves byte-identical
// job payloads — and identical recommendations and neighborhoods — to a
// plain engine under the same seed and workload. The old fixed-hash
// path is gone; this is the test that proves nothing depended on it.
func TestOnePartitionRingEquivalence(t *testing.T) {
	cfg := testConfig()
	engine := server.NewEngine(cfg)
	clus := New(cfg, 1)
	defer clus.Close()
	w := widget.New()

	const users = 30
	for round := 0; round < 3; round++ {
		for u := core.UserID(1); u <= users; u++ {
			item := core.ItemID(uint32(u)*11 + uint32(round))
			if err := engine.Rate(tctx, u, item, true); err != nil {
				t.Fatal(err)
			}
			if err := clus.Rate(tctx, u, item, true); err != nil {
				t.Fatal(err)
			}

			ejson, egz, err := engine.JobPayload(u)
			if err != nil {
				t.Fatalf("engine JobPayload(%d): %v", u, err)
			}
			cjson, cgz, err := clus.JobPayload(u)
			if err != nil {
				t.Fatalf("cluster JobPayload(%d): %v", u, err)
			}
			if !bytes.Equal(ejson, cjson) || !bytes.Equal(egz, cgz) {
				t.Fatalf("round %d user %d: payload bytes diverged:\nengine  %s\ncluster %s",
					round, u, ejson, cjson)
			}

			ejob, err := engine.Job(tctx, u)
			if err != nil {
				t.Fatal(err)
			}
			eres, _ := w.Execute(ejob)
			erecs, err := engine.ApplyResult(tctx, eres)
			if err != nil {
				t.Fatal(err)
			}
			crecs := cycle(t, clus, w, u)
			if fmt.Sprint(erecs) != fmt.Sprint(crecs) {
				t.Fatalf("round %d user %d: recommendations diverged: %v vs %v", round, u, erecs, crecs)
			}
		}
	}
}

// scaleTestCluster builds a cluster with a fast scheduler, seeded with
// `users` rated users.
func scaleTestCluster(t *testing.T, parts, users int) *Cluster {
	t.Helper()
	cfg := testConfig()
	cfg.LeaseTTL = 200 * time.Millisecond
	cfg.FallbackWorkers = 2
	c := New(cfg, parts)
	for u := core.UserID(1); u <= core.UserID(users); u++ {
		for j := 0; j < 3; j++ {
			if err := c.Rate(tctx, u, core.ItemID(uint32(u)*5+uint32(j)), j%2 == 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// TestScaleOutMovesState: a 2→4 scale-out relocates exactly the users
// whose ring arc changed hands, preserves every profile byte-for-byte,
// carries KNN rows along, and leaves each user on exactly one
// partition — the one the 4-partition ring owns her with.
func TestScaleOutMovesState(t *testing.T) {
	const users = 200
	c := scaleTestCluster(t, 2, users)
	defer c.Close()
	w := widget.New()
	for u := core.UserID(1); u <= users; u++ {
		cycle(t, c, w, u)
	}

	before := make(map[core.UserID]core.Profile, users)
	knnBefore := make(map[core.UserID][]core.UserID, users)
	for u := core.UserID(1); u <= users; u++ {
		before[u] = c.Profile(u)
		hood, _ := c.Neighbors(tctx, u)
		knnBefore[u] = hood
	}
	oldRing := c.Ring()
	newRing := NewRing(4, DefaultVNodes)
	wantMoved := 0
	for u := core.UserID(1); u <= users; u++ {
		if oldRing.Owner(u) != newRing.Owner(u) {
			wantMoved++
		}
	}
	if wantMoved == 0 || wantMoved == users {
		t.Fatalf("degenerate move set %d/%d; ring broken", wantMoved, users)
	}

	if err := c.Scale(tctx, 4); err != nil {
		t.Fatal(err)
	}

	if got := c.NumPartitions(); got != 4 {
		t.Fatalf("NumPartitions = %d after Scale(4)", got)
	}
	if c.Stats()["migrating"].(bool) {
		t.Fatal("migrating still true after Scale returned")
	}
	if got := c.Topology().UsersMovedTotal; got != int64(wantMoved) {
		t.Fatalf("users moved = %d, want %d", got, wantMoved)
	}
	for u := core.UserID(1); u <= users; u++ {
		owner := c.Partition(u)
		copies := 0
		for i := 0; i < 4; i++ {
			if c.Engine(i).KnownUser(u) {
				copies++
				if i != owner {
					t.Fatalf("user %d stored on partition %d but owned by %d", u, i, owner)
				}
			}
		}
		if copies != 1 {
			t.Fatalf("user %d stored on %d partitions", u, copies)
		}
		if !before[u].Equal(c.Profile(u)) {
			t.Fatalf("user %d: profile changed across scale-out:\nbefore %v\nafter  %v",
				u, before[u], c.Profile(u))
		}
		hood, _ := c.Neighbors(tctx, u)
		if fmt.Sprint(hood) != fmt.Sprint(knnBefore[u]) {
			t.Fatalf("user %d: KNN row changed across scale-out: %v → %v", u, knnBefore[u], hood)
		}
	}
	// The scaled cluster keeps serving full cycles.
	for u := core.UserID(1); u <= 20; u++ {
		cycle(t, c, w, u)
	}
}

// TestScaleRoundTripOwnership is the satellite equivalence test:
// Scale(N)→Scale(M)→Scale(N) round-trips ownership exactly — every user
// ends on the partition the original topology owned her with, with her
// profile intact.
func TestScaleRoundTripOwnership(t *testing.T) {
	const users = 150
	c := scaleTestCluster(t, 2, users)
	defer c.Close()

	ownerBefore := make(map[core.UserID]int, users)
	profBefore := make(map[core.UserID]core.Profile, users)
	for u := core.UserID(1); u <= users; u++ {
		ownerBefore[u] = c.Partition(u)
		profBefore[u] = c.Profile(u)
	}
	if err := c.Scale(tctx, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Scale(tctx, 2); err != nil {
		t.Fatal(err)
	}
	for u := core.UserID(1); u <= users; u++ {
		if got := c.Partition(u); got != ownerBefore[u] {
			t.Fatalf("user %d: ownership %d → %d did not round-trip", u, ownerBefore[u], got)
		}
		if !c.Engine(ownerBefore[u]).KnownUser(u) {
			t.Fatalf("user %d not stored on her round-tripped owner %d", u, ownerBefore[u])
		}
		if !profBefore[u].Equal(c.Profile(u)) {
			t.Fatalf("user %d: profile did not survive the round trip", u)
		}
	}
}

// TestScaleInDrainsRemovedPartitions: a 4→2 scale-in moves every user
// off the removed partitions, and leases minted by their (retired)
// lanes report unknown instead of misrouting.
func TestScaleInDrainsRemovedPartitions(t *testing.T) {
	const users = 120
	c := scaleTestCluster(t, 4, users)
	defer c.Close()

	// Hold a lease minted by a partition that is about to be removed.
	var removedLease uint64
	deadline := time.Now().Add(2 * time.Second)
	for removedLease == 0 && time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(tctx, 200*time.Millisecond)
		job, err := c.NextJob(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
		if pi := c.LanePartition(job.Lease); pi >= 2 {
			removedLease = job.Lease
		} else {
			c.Ack(tctx, job.Lease, true)
		}
	}

	if err := c.Scale(tctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.NumPartitions(); got != 2 {
		t.Fatalf("NumPartitions = %d after Scale(2)", got)
	}
	total := 0
	for i := 0; i < 2; i++ {
		total += c.Engine(i).Profiles().Len()
	}
	if total != users {
		t.Fatalf("population %d after scale-in, want %d", total, users)
	}
	for u := core.UserID(1); u <= users; u++ {
		if p := c.Partition(u); !c.Engine(p).KnownUser(u) {
			t.Fatalf("user %d missing from her owner %d after scale-in", u, p)
		}
	}
	if removedLease != 0 {
		if err := c.Ack(tctx, removedLease, true); !errors.Is(err, server.ErrUnknownLease) {
			t.Fatalf("ack of retired-lane lease = %v, want ErrUnknownLease", err)
		}
	}
}

// TestMidMoveResultDoubleRoutes: a result computed from a job issued
// before the migration, arriving while the user is mid-move (topology
// published, state not yet streamed), is resolved against the minting
// partition and folded into the new owner — no refresh computed across
// the window is lost.
func TestMidMoveResultDoubleRoutes(t *testing.T) {
	const users = 100
	c := scaleTestCluster(t, 2, users)
	defer c.Close()
	w := widget.New()

	// Find a user the 2→4 scale will move.
	oldRing, newRing := c.Ring(), NewRing(4, DefaultVNodes)
	var moved core.UserID
	for u := core.UserID(1); u <= users; u++ {
		if oldRing.Owner(u) != newRing.Owner(u) {
			moved = u
			break
		}
	}
	if moved == 0 {
		t.Fatal("no user moves 2→4")
	}

	job, err := c.Job(tctx, moved)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := w.Execute(job)

	var hookErr error
	var hookRecs []core.ItemID
	var hookJobLiked int
	c.moveHook = func() {
		hookRecs, hookErr = c.ApplyResult(tctx, res)
		// Jobs for a mid-move, not-yet-imported user must come from the
		// source — assembled from her real profile, not the
		// destination's empty stub.
		if job, err := c.Job(tctx, moved); err == nil {
			hookJobLiked = len(job.Profile.Liked) + len(job.Profile.Disliked)
		}
	}
	if err := c.Scale(tctx, 4); err != nil {
		t.Fatal(err)
	}
	if hookErr != nil {
		t.Fatalf("mid-move result did not double-route: %v", hookErr)
	}
	if len(hookRecs) == 0 {
		t.Fatal("mid-move fold-in returned no recommendations")
	}
	if hookJobLiked == 0 {
		t.Fatal("mid-move job assembled from an empty profile; source gate missing")
	}
	// The refreshed row must live on the new owner.
	hood, err := c.Neighbors(tctx, moved)
	if err != nil || len(hood) == 0 {
		t.Fatalf("moved user's refreshed KNN row lost: %v %v", hood, err)
	}
	if !c.Engine(newRing.Owner(moved)).KnownUser(moved) {
		t.Fatal("moved user not on new owner after migration")
	}
}

// TestStaleResultForMovedUserRejected: after the migration completes, a
// straggler result from a pre-migration job for a moved user surfaces
// server.ErrMoved — rejected (the client refreshes its topology), never
// folded into the partition that no longer owns the user.
func TestStaleResultForMovedUserRejected(t *testing.T) {
	const users = 100
	c := scaleTestCluster(t, 2, users)
	defer c.Close()
	w := widget.New()

	oldRing, newRing := c.Ring(), NewRing(4, DefaultVNodes)
	var moved core.UserID
	for u := core.UserID(1); u <= users; u++ {
		if oldRing.Owner(u) != newRing.Owner(u) {
			moved = u
			break
		}
	}
	job, err := c.Job(tctx, moved)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := w.Execute(job)

	if err := c.Scale(tctx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyResult(tctx, res); !errors.Is(err, server.ErrMoved) {
		t.Fatalf("stale result for moved user = %v, want ErrMoved", err)
	}
	// The same straggler for a user that did NOT move still applies:
	// the epoch bump kept the previous epoch resolvable.
	var stayed core.UserID
	for u := core.UserID(1); u <= users; u++ {
		if oldRing.Owner(u) == newRing.Owner(u) {
			stayed = u
			break
		}
	}
	job2, err := c.Job(tctx, stayed) // note: issued post-migration
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := w.Execute(job2)
	if _, err := c.ApplyResult(tctx, res2); err != nil {
		t.Fatalf("result for unmoved user rejected: %v", err)
	}
}

// TestScaleOutUnderTraffic is the acceptance anchor: a 2→4 scale-out
// under concurrent rating ingest, user-driven personalization cycles
// and pull-based workers loses zero acknowledged ratings, converges to
// a clean 4-partition topology (migrating:false, every user on exactly
// her ring owner), and runs race-clean (this package is on the CI -race
// list).
func TestScaleOutUnderTraffic(t *testing.T) {
	const users = 300
	c := scaleTestCluster(t, 2, users)
	defer c.Close()

	type ack struct {
		u    core.UserID
		item core.ItemID
	}
	ctx, cancel := context.WithCancel(tctx)
	var wg sync.WaitGroup
	acked := make([][]ack, 4) // one slab per rater, no shared state

	// Raters: unique always-liked (user, item) pairs, recorded only
	// after Rate acknowledged.
	for r := 0; r < len(acked); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				u := core.UserID(uint32(r*7919+i)%users + 1)
				item := core.ItemID(1_000_000 + uint32(r)*100_000 + uint32(i))
				if err := c.Rate(ctx, u, item, true); err != nil {
					return
				}
				acked[r] = append(acked[r], ack{u: u, item: item})
			}
		}(r)
	}
	// User-driven personalization cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := widget.New()
		for i := 0; ctx.Err() == nil; i++ {
			u := core.UserID(uint32(i*31)%users + 1)
			job, err := c.Job(ctx, u)
			if err != nil {
				continue
			}
			res, _ := w.Execute(job)
			c.ApplyResult(ctx, res) // stale/moved stragglers are the protocol working
		}
	}()
	// Pull-based workers draining the staleness queue.
	for n := 0; n < 2; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := widget.New()
			for ctx.Err() == nil {
				jctx, jcancel := context.WithTimeout(ctx, 100*time.Millisecond)
				job, err := c.NextJob(jctx)
				jcancel()
				if err != nil || job == nil {
					continue
				}
				res, _ := w.Execute(job)
				if _, err := c.ApplyResult(ctx, res); err != nil && job.Lease != 0 {
					c.Ack(ctx, job.Lease, false)
				}
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	if err := c.Scale(tctx, 4); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	cancel()
	wg.Wait()

	if got := c.NumPartitions(); got != 4 {
		t.Fatalf("NumPartitions = %d", got)
	}
	if c.Stats()["migrating"].(bool) {
		t.Fatal("migrating still true after scale")
	}
	// Zero acknowledged-rating loss: every acked (u, item) is in u's
	// profile on her current owner.
	lost := 0
	total := 0
	for _, slab := range acked {
		for _, a := range slab {
			total++
			if !c.Profile(a.u).LikedContains(a.item) {
				lost++
				t.Errorf("acknowledged rating lost: user %d item %d", a.u, a.item)
				if lost > 5 {
					t.Fatalf("… and more (%d/%d checked)", lost, total)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no ratings were acknowledged; traffic harness broken")
	}
	// Every user on exactly her ring owner.
	for u := core.UserID(1); u <= users; u++ {
		owner := c.Partition(u)
		for i := 0; i < 4; i++ {
			if c.Engine(i).KnownUser(u) != (i == owner) {
				t.Fatalf("user %d misplaced: stored-on-%d=%v, owner=%d", u, i, c.Engine(i).KnownUser(u), owner)
			}
		}
	}
	t.Logf("traffic: %d acknowledged ratings, %d users moved", total, c.Topology().UsersMovedTotal)
}

// TestScaleInMidMoveWindow pins the scale-in mid-move surface: while a
// 4→2 migration is streaming, users leaving a *removed* partition must
// stay fully serviceable — reads reach the retired source engine, jobs
// are assembled from the real profile, a pre-scale result double-routes
// into the surviving owner, and the retired partition's lease lane
// still acks. (Regression: these paths used to index t.parts[from] out
// of range and panic.)
func TestScaleInMidMoveWindow(t *testing.T) {
	const users = 120
	c := scaleTestCluster(t, 4, users)
	defer c.Close()
	w := widget.New()
	for u := core.UserID(1); u <= users; u++ {
		cycle(t, c, w, u)
	}

	// A user currently owned by a partition the scale-in removes.
	var victim core.UserID
	for u := core.UserID(1); u <= users; u++ {
		if c.Partition(u) >= 2 {
			victim = u
			break
		}
	}
	if victim == 0 {
		t.Fatal("no user on a to-be-removed partition")
	}
	profBefore := c.Profile(victim)
	job, err := c.Job(tctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := w.Execute(job)

	var hookErrs []error
	c.moveHook = func() {
		if !c.KnownUser(victim) {
			hookErrs = append(hookErrs, fmt.Errorf("victim unknown mid-move"))
		}
		if p := c.Profile(victim); !p.Equal(profBefore) {
			hookErrs = append(hookErrs, fmt.Errorf("victim profile unreadable mid-move: %v", p))
		}
		if _, err := c.Neighbors(tctx, victim); err != nil {
			hookErrs = append(hookErrs, fmt.Errorf("neighbors mid-move: %w", err))
		}
		if j, err := c.Job(tctx, victim); err != nil {
			hookErrs = append(hookErrs, fmt.Errorf("job mid-move: %w", err))
		} else if len(j.Profile.Liked)+len(j.Profile.Disliked) == 0 {
			hookErrs = append(hookErrs, fmt.Errorf("mid-move job from empty profile"))
		}
		if _, err := c.ApplyResult(tctx, res); err != nil {
			hookErrs = append(hookErrs, fmt.Errorf("pre-scale result did not double-route: %w", err))
		}
		if job.Lease != 0 {
			// The lease was retired by the double-routed fold-in above;
			// the lane itself must still resolve to the retired engine
			// (unknown_lease, not a misroute or panic).
			if err := c.Ack(tctx, job.Lease, true); err != nil && !errors.Is(err, server.ErrUnknownLease) {
				hookErrs = append(hookErrs, fmt.Errorf("retired-lane ack mid-move: %w", err))
			}
		}
	}
	if err := c.Scale(tctx, 2); err != nil {
		t.Fatal(err)
	}
	for _, err := range hookErrs {
		t.Error(err)
	}
	if got := c.Partition(victim); got >= 2 || !c.Engine(got).KnownUser(victim) {
		t.Fatalf("victim not settled on a surviving partition (owner %d)", got)
	}
	if !c.Profile(victim).Equal(profBefore) {
		t.Fatal("victim profile lost across scale-in")
	}
	hood, err := c.Neighbors(tctx, victim)
	if err != nil || len(hood) == 0 {
		t.Fatalf("victim's double-routed KNN row lost: %v %v", hood, err)
	}
}
