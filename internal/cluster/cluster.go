// Package cluster implements a user-partitioned cluster of HyRec server
// engines behind a single front-end — the horizontal-scaling layer the
// paper's "millions of users" ambition calls for once one machine's
// memory and lock domains become the bottleneck.
//
// A Cluster owns N partitions, each a full server.Engine with its own
// profile table, KNN table, anonymiser and sampler RNG. Users are mapped
// to partitions by a consistent-hash ring with virtual nodes (ring.go),
// so routing is stateless and deterministic — and, unlike the fixed
// multiplicative hash it replaced, *elastic*: Scale adds or removes
// partitions at runtime, streaming only the moved users' state between
// engines (migrate.go) while the rest of the population keeps serving
// uninterrupted.
//
// Partitioning alone would fragment the KNN graph into N disjoint
// neighbourhoods — a user could only ever discover neighbours inside her
// own partition, capping recall well below the single-engine baseline.
// The cluster therefore implements cross-partition candidate exchange:
// every partition's sampler tops up the §3.1 candidate set with random
// users drawn from sibling partitions (through the PeerSampler
// interface), and the engines resolve those foreign users' profiles at
// job-assembly time through the profile-resolver hook. Foreign users
// flow through the widget protocol and the KNN tables exactly like local
// ones — only their profile bytes live elsewhere — so the exchanged
// candidates let every user's neighbourhood converge toward the global
// KNN graph instead of a per-partition local optimum. The
// ClusterRecall experiment (internal/experiments) verifies recall@10
// stays within a few percent of the single-engine baseline.
//
// The whole topology — ring, engine set, lease-lane registry, and the
// set of users mid-migration — is published through one atomic pointer:
// every operation pins a consistent snapshot, and a concurrent Scale
// replaces the pointer rather than mutating anything a reader might
// hold.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/sched"
	"hyrec/internal/server"
	"hyrec/internal/wire"
)

// ErrUnroutable is returned when no partition can claim a widget result:
// its (UID, epoch) pseudonym does not resolve to a user owned and known
// by any partition — either the epoch is stale on the minting partition
// or the result is garbage. It wraps server.ErrStaleEpoch so transport
// layers map it to the same status an unresolvable single-engine epoch
// gets (410 Gone).
var ErrUnroutable = fmt.Errorf("cluster: result not routable to any partition: %w", server.ErrStaleEpoch)

// seedStride separates the per-partition RNG seed lanes so sibling
// engines (and their anonymisers, which use seed+1) never share a stream.
// Partition 0 keeps the configured seed unchanged, which makes a
// 1-partition cluster bit-for-bit equivalent to a plain engine.
const seedStride = 1_000_003

// PartitionSeed derives the engine seed for partition i from the
// cluster-level seed. A partition created by a later Scale gets exactly
// the seed a static cluster of that size would have given it, so a
// scaled-out deployment and a statically-sized one are the same system.
func PartitionSeed(seed int64, i int) int64 { return seed + int64(i)*seedStride }

// moveTarget records one mid-migration user's source and destination
// partitions.
type moveTarget struct {
	from, to int32
}

// topology is one immutable snapshot of the cluster's shape. Scale
// publishes new snapshots through Cluster.topo; readers pin one per
// operation and never observe a half-applied change.
type topology struct {
	ring  *Ring
	parts []*server.Engine
	// lanes routes lease IDs back to the scheduler that minted them:
	// partition p mints IDs ≡ laneOf[p]+1 (mod laneStep), and
	// lanes[(id-1) mod laneStep] recovers p. Unlike the old
	// (lease-1) mod N rule, the registry survives scale events — lanes
	// are allocated monotonically and never reused, so a lease minted by
	// a long-removed partition can only report unknown, never misroute.
	lanes  map[uint64]int
	laneOf []uint64
	// moving, non-nil only while a Scale is streaming state, maps each
	// user whose ownership changed in the running migration to her
	// source and destination. Results for these users double-route:
	// resolved on the minting partition, folded into the owning one.
	moving map[core.UserID]moveTarget
	// retired, non-nil only while a scale-in streams state, holds the
	// engines of the partitions being removed (old indices
	// len(parts)…len(parts)+len(retired)-1). They stay addressable as
	// migration sources — mid-move reads, result resolution and lease
	// acks for jobs they minted — until the migration completes.
	retired []*server.Engine
}

// owner returns the engine that owns u under this topology.
func (t *topology) owner(u core.UserID) *server.Engine { return t.parts[t.ring.Owner(u)] }

// engineAt returns the engine for partition index i, reaching the
// retired engines of an in-flight scale-in for i >= len(parts). Only
// mid-move sources (moveTarget.from, lane-registry hits) ever carry
// such indices.
func (t *topology) engineAt(i int) *server.Engine {
	if i < len(t.parts) {
		return t.parts[i]
	}
	return t.retired[i-len(t.parts)]
}

// numEngines counts live plus retired engines — the scan width for
// result resolution.
func (t *topology) numEngines() int { return len(t.parts) + len(t.retired) }

// Cluster is a user-partitioned set of server engines behind one
// front-end. All methods are safe for concurrent use, including
// concurrently with Scale.
type Cluster struct {
	cfg   server.Config
	topo  atomic.Pointer[topology]
	peers PeerSampler
	// exchange is the cross-partition top-up budget per job (see
	// SetExchange).
	exchange int
	// dispatchCursor rotates NextJob's scan start across calls so a
	// busy partition cannot starve its siblings' staleness queues.
	dispatchCursor atomic.Uint64
	// dispatchReady receives one token whenever any partition's
	// scheduler gains pending work, so NextJob sleeps instead of
	// polling (buffered: a notify with no waiter is kept for the next).
	dispatchReady chan struct{}
	notify        func()

	// scaleMu serializes Scale calls (and Close against them); nextLane
	// and closed are guarded by it.
	scaleMu  sync.Mutex
	nextLane uint64
	closed   bool

	// moveHook, when non-nil, runs inside Scale right after the new
	// topology is published and before any state streams — the test
	// seam for exercising the mid-move double-routing window.
	moveHook func()

	// migrating is true while a Scale is streaming user state; exposed
	// on /stats and /v1/topology.
	migrating atomic.Bool
	// usersMoved counts users migrated across all Scale calls (the
	// hyrec_migration_users_moved_total gauge).
	usersMoved atomic.Int64
}

// New builds a cluster of nParts engines from cfg. Partition i runs with
// seed PartitionSeed(cfg.Seed, i); all other configuration is shared.
// It panics on nParts < 1 or an invalid cfg (programmer error),
// mirroring server.NewEngine.
func New(cfg server.Config, nParts int) *Cluster {
	if nParts < 1 {
		panic(fmt.Sprintf("cluster: nParts must be >= 1, got %d", nParts))
	}
	// Each partition runs its own scheduler, but the fallback compute
	// budget is shared: cfg.FallbackWorkers bounds concurrent server-side
	// executions for the whole cluster, not per partition, so a churn
	// storm on every partition at once cannot multiply the residual
	// server compute by N (the Section 5.4 cost constraint). The budget
	// is created even for a 1-partition cluster (where it is a no-op
	// bound equal to the pool size) so a later Scale shares it too.
	if cfg.SchedulerEnabled() && cfg.FallbackWorkers > 0 && cfg.FallbackBudget == nil {
		cfg.FallbackBudget = sched.NewBudget(cfg.FallbackWorkers)
	}
	c := &Cluster{cfg: cfg, exchange: cfg.K}
	c.dispatchReady = make(chan struct{}, 1)
	c.notify = func() {
		select {
		case c.dispatchReady <- struct{}{}:
		default:
		}
	}
	c.peers = EnginePeers{Cluster: c}
	t := &topology{
		ring:   NewRing(nParts, DefaultVNodes),
		parts:  make([]*server.Engine, nParts),
		lanes:  make(map[uint64]int, nParts),
		laneOf: make([]uint64, nParts),
	}
	for i := range t.parts {
		lane := c.nextLane
		c.nextLane++
		t.parts[i] = c.newPartition(i, lane)
		t.lanes[lane] = i
		t.laneOf[i] = lane
	}
	c.topo.Store(t)
	return c
}

// newPartition builds the engine for partition index i, minting leases
// on the given lane. Shared by New and Scale so a scaled-out partition
// is indistinguishable from a statically-configured one.
func (c *Cluster) newPartition(i int, lane uint64) *server.Engine {
	pcfg := c.cfg
	pcfg.Seed = PartitionSeed(c.cfg.Seed, i)
	e := server.NewEngine(pcfg)
	if s := e.Scheduler(); s != nil {
		s.SetIDSpace(lane+1, laneStep)
		s.OnReady(c.notify)
	}
	e.SetSampler(&exchangeSampler{base: server.NewDefaultSampler(e), cluster: c, home: i})
	e.SetProfileResolver(c.foreignProfile(i))
	return e
}

// snap pins the current topology.
func (c *Cluster) snap() *topology { return c.topo.Load() }

// Config returns the cluster-level configuration (partition 0's seed).
func (c *Cluster) Config() server.Config { return c.cfg }

// NumPartitions returns the current number of partitions.
func (c *Cluster) NumPartitions() int { return len(c.snap().parts) }

// Engine returns partition i's engine (metrics, tables, meters).
func (c *Cluster) Engine(i int) *server.Engine { return c.snap().parts[i] }

// Ring returns the current consistent-hash ring.
func (c *Cluster) Ring() *Ring { return c.snap().ring }

// WithStableTopology runs fn with the topology frozen: no Scale can
// publish or stream state while fn executes. The persist layer captures
// cluster snapshots under it, so a concurrent scale-in cannot shrink
// the engine set mid-capture and a capture can never observe a mid-move
// user's state on two partitions at once.
func (c *Cluster) WithStableTopology(fn func(ring *Ring, parts []*server.Engine)) {
	c.scaleMu.Lock()
	defer c.scaleMu.Unlock()
	t := c.snap()
	fn(t.ring, t.parts)
}

// Partition returns the index of the partition that owns u under the
// current topology: a pure function of (u, ring), stable under user
// churn, identical across restarts of the same topology, and — by the
// ring's construction — moving only ~1/N of users per partition added
// or removed when the topology scales.
func (c *Cluster) Partition(u core.UserID) int { return c.snap().ring.Owner(u) }

// SetExchange overrides the number of cross-partition exchange candidates
// added to every candidate set (default: the configured K). Zero disables
// the exchange, which fragments the KNN graph into per-partition
// neighbourhoods — useful only as an ablation. Must be called before
// serving traffic.
func (c *Cluster) SetExchange(n int) {
	if n < 0 {
		panic("cluster: negative exchange budget")
	}
	c.exchange = n
}

// SetPeerSampler replaces the source of cross-partition exchange
// candidates (default: EnginePeers, which draws directly from sibling
// rosters). Must be called before serving traffic.
func (c *Cluster) SetPeerSampler(p PeerSampler) {
	if p == nil {
		panic("cluster: nil peer sampler")
	}
	c.peers = p
}

// foreignProfile builds the profile resolver for partition home: profiles
// of users owned by sibling partitions are read through the owning
// engine's published table view (lock-free for any user the view knows;
// SnapshotProfile falls back to the authoritative sharded-lock lookup for
// users newer than the view, and returns an empty profile for users the
// owner has not registered either — exactly the single-engine fallback).
// Local users report ok=false so the engine's own authoritative lookup
// stays in charge.
func (c *Cluster) foreignProfile(home int) server.ProfileResolver {
	return func(u core.UserID) (core.Profile, bool) {
		t := c.snap()
		p := t.ring.Owner(u)
		if p == home {
			return core.Profile{}, false
		}
		return t.parts[p].SnapshotProfile(u), true
	}
}

// Rate records a rating on the partition that owns u (Arrow 1 of
// Figure 1, routed). A topology published concurrently is re-checked
// after the write: if ownership moved between pinning the snapshot and
// the profile update landing, the rating is re-applied on the new owner
// — ratings are idempotent set operations, so the double-apply is safe,
// and the re-check guarantees an acknowledged rating is never stranded
// on a partition the migration has already drained.
func (c *Cluster) Rate(ctx context.Context, u core.UserID, item core.ItemID, liked bool) error {
	t := c.snap()
	e := t.owner(u)
	if err := e.Rate(ctx, u, item, liked); err != nil {
		return err
	}
	if t2 := c.snap(); t2 != t {
		if e2 := t2.owner(u); e2 != e {
			return e2.Rate(ctx, u, item, liked)
		}
	}
	return nil
}

// RateBatch records many opinions, routing each to its owning partition
// with the same publish-race re-check as Rate.
func (c *Cluster) RateBatch(ctx context.Context, ratings []core.Rating) error {
	for _, r := range ratings {
		if err := c.Rate(ctx, r.User, r.Item, r.Liked); err != nil {
			return err
		}
	}
	return nil
}

// jobEngine picks the engine that assembles u's jobs: the ring owner,
// except for a mid-move user whose state has not been imported yet —
// her job must come from the source, or it would be assembled from an
// empty profile and the widget's junk result could then outrank the
// real imported row (ImportUsers keeps destination rows, which are
// normally newer). Results from source-minted jobs double-route back
// to the destination via the moving set.
func (t *topology) jobEngine(u core.UserID) *server.Engine {
	if mt, mov := t.moving[u]; mov && !t.parts[mt.to].KnownUser(u) {
		return t.engineAt(int(mt.from))
	}
	return t.owner(u)
}

// Job assembles u's personalization job on the owning partition. The
// candidate set mixes the partition-local §3.1 rule with cross-partition
// exchange candidates; every pseudonym in the job belongs to the
// assembling partition's anonymiser.
func (c *Cluster) Job(ctx context.Context, u core.UserID) (*wire.Job, error) {
	return c.snap().jobEngine(u).Job(ctx, u)
}

// JobPayload assembles and serializes u's personalization job (JSON +
// gzip) on the owning partition, exactly as Engine.JobPayload.
func (c *Cluster) JobPayload(u core.UserID) (jsonBody, gzBody []byte, err error) {
	return c.snap().jobEngine(u).JobPayload(u)
}

// AppendJobPayload implements server.PayloadAppender on the owning
// partition (the pooled zero-allocation serving path).
func (c *Cluster) AppendJobPayload(ctx context.Context, u core.UserID, jsonDst, gzDst []byte) (jsonBody, gzBody []byte, err error) {
	return c.snap().jobEngine(u).AppendJobPayload(ctx, u, jsonDst, gzDst)
}

// AppendJobJSON implements server.JSONJobAppender on the owning
// partition — the framed plane's gzip-free serving path.
func (c *Cluster) AppendJobJSON(ctx context.Context, u core.UserID, jsonDst []byte) ([]byte, error) {
	return c.snap().jobEngine(u).AppendJobJSON(ctx, u, jsonDst)
}

// routed describes where a widget result resolves and where it applies.
type routed struct {
	// mint is the partition whose anonymiser minted the pseudonyms.
	mint *server.Engine
	// apply is the partition that owns the user now (== mint outside a
	// migration window).
	apply *server.Engine
	user  core.UserID
	// moved marks a result that resolved cleanly but whose user's
	// ownership changed in a completed migration — surfaced as
	// server.ErrMoved so clients refresh their topology.
	moved bool
}

// route finds the partition that minted res's pseudonyms. When the
// result carries a lease, the lane registry gives the minting partition
// in O(1) — the common case for worker-computed results — and the scan
// over all partitions remains only as the fallback for leaseless
// (legacy synchronous) results and for leases whose verification fails.
// Claim precedence mirrors the pre-ring routing: a partition that both
// minted and owns the resolved user wins; a mid-move source partition
// claims next (the result then double-routes to the destination); a
// completed move yields a moved claim; an ownership-only match is kept
// as the last fallback so the owning engine can report its own error.
func (c *Cluster) route(t *topology, res *wire.Result) (routed, bool) {
	if res.Lease != 0 {
		if pi, ok := t.lanes[(res.Lease-1)%laneStep]; ok {
			if r, ok := t.claim(pi, res); ok {
				return r, true
			}
		}
	}
	var fb routed
	var hasFB, hasMoved bool
	var moved routed
	// Retired scale-in sources are scanned too: jobs they minted are
	// still in flight mid-move and must double-route, not bounce.
	for i := 0; i < t.numEngines(); i++ {
		e := t.engineAt(i)
		u, ok := e.ResolveUser(core.UserID(res.UID), res.Epoch)
		if !ok {
			continue
		}
		owner := t.ring.Owner(u)
		switch {
		case owner == i && e.KnownUser(u):
			return routed{mint: e, apply: e, user: u}, true
		case owner != i:
			if mt, mov := t.moving[u]; mov && int(mt.from) == i {
				return routed{mint: e, apply: t.parts[mt.to], user: u}, true
			}
			// A foreign-owned resolution is almost always a wrong
			// partition's Feistel inversion yielding a random ID; only
			// when the owner actually knows the user is this a genuine
			// post-migration straggler.
			if !hasMoved && t.parts[owner].KnownUser(u) {
				moved = routed{mint: e, apply: t.parts[owner], user: u, moved: true}
				hasMoved = true
			}
		default: // owner == i, user unknown
			if !hasFB {
				fb = routed{mint: e, apply: e, user: u}
				hasFB = true
			}
		}
	}
	if hasMoved {
		return moved, true
	}
	if hasFB {
		return fb, true
	}
	return routed{}, false
}

// claim verifies a lane-registry hit: partition pi must resolve the
// pseudonym and either own the user, be mid-move source for her, or
// have lost her to a completed migration (moved). Reports ok=false when
// verification fails, sending route back to the full scan.
func (t *topology) claim(pi int, res *wire.Result) (routed, bool) {
	e := t.engineAt(pi)
	u, ok := e.ResolveUser(core.UserID(res.UID), res.Epoch)
	if !ok {
		return routed{}, false
	}
	owner := t.ring.Owner(u)
	if owner == pi {
		return routed{mint: e, apply: e, user: u}, true
	}
	if mt, mov := t.moving[u]; mov && int(mt.from) == pi {
		return routed{mint: e, apply: t.parts[mt.to], user: u}, true
	}
	if t.parts[owner].KnownUser(u) {
		return routed{mint: e, apply: t.parts[owner], user: u, moved: true}, true
	}
	return routed{}, false
}

// ApplyResult routes a widget result to the partition whose anonymiser
// minted its pseudonyms and folds it into the partition that owns the
// user. Outside a migration window those are the same engine and the
// call is exactly the single-engine fold-in. For users mid-move the
// result double-routes: pseudonyms are resolved against the minting
// (source) partition's anonymiser and the refreshed row is written to
// the destination, so no refresh computed across the migration window
// is lost. A result for a user whose move completed in an earlier
// migration fails with server.ErrMoved — rejected, never misrouted —
// and the typed client reacts by refreshing its topology.
func (c *Cluster) ApplyResult(ctx context.Context, res *wire.Result) ([]core.ItemID, error) {
	t := c.snap()
	r, ok := c.route(t, res)
	if !ok {
		return nil, fmt.Errorf("%w: uid alias %d epoch %d", ErrUnroutable, res.UID, res.Epoch)
	}
	if r.moved {
		return nil, fmt.Errorf("%w: uid alias %d epoch %d", server.ErrMoved, res.UID, res.Epoch)
	}
	if r.apply == r.mint {
		return r.mint.ApplyResult(ctx, res)
	}
	// Double-route: resolve where minted, fold in where owned.
	rr, err := r.mint.ResolveResult(res)
	if err != nil {
		return nil, err
	}
	if !r.apply.KnownUser(rr.User) && !r.mint.KnownUser(rr.User) {
		return nil, fmt.Errorf("%w: %v", server.ErrUnknownUser, rr.User)
	}
	recs, err := r.apply.ApplyResolved(ctx, rr)
	if err != nil {
		return nil, err
	}
	// The fold-in was computed against the source's (pre-move) candidate
	// pool, and ApplyResolved's implicit ack just marked the user fresh
	// on the destination — re-queue the re-convergence refresh
	// ImportUsers owes her instead of letting the stale-provenance
	// result retire it.
	r.apply.MarkStale(rr.User)
	// The lease (if any) lives on the minting partition's scheduler
	// until the migration coordinator evicts it; retire it so the
	// source does not re-issue a refresh the destination just absorbed.
	if rr.Lease != 0 {
		if s := r.mint.Scheduler(); s != nil {
			s.AckUser(rr.Lease, rr.User, true)
		}
	}
	return recs, nil
}

// ResolveUser inverts a user pseudonym against the partition that minted
// it. Like route, a known-user claim wins over ownership-only matches —
// a wrong partition's Feistel inversion yields a random ID that passes
// the ownership check ~1/N of the time, but is almost never registered.
// Transport layers use this for presence bookkeeping.
func (c *Cluster) ResolveUser(alias core.UserID, epoch uint64) (core.UserID, bool) {
	t := c.snap()
	var fb core.UserID
	var hasFB bool
	for i := 0; i < t.numEngines(); i++ {
		e := t.engineAt(i)
		u, ok := e.ResolveUser(alias, epoch)
		if !ok {
			continue
		}
		owner := t.ring.Owner(u)
		if owner != i {
			mt, mov := t.moving[u]
			if !mov || int(mt.from) != i {
				continue
			}
		}
		if t.parts[owner].KnownUser(u) || e.KnownUser(u) {
			return u, true
		}
		if !hasFB {
			fb, hasFB = u, true
		}
	}
	return fb, hasFB
}

// Neighbors returns u's current KNN approximation from the owning
// partition. The list may contain users owned by sibling partitions —
// that is the cross-partition exchange working.
func (c *Cluster) Neighbors(ctx context.Context, u core.UserID) ([]core.UserID, error) {
	t := c.snap()
	if mt, mov := t.moving[u]; mov && !t.parts[mt.to].KnownUser(u) {
		// Mid-move, pre-import: the source still holds the row.
		return t.engineAt(int(mt.from)).Neighbors(ctx, u)
	}
	return t.owner(u).Neighbors(ctx, u)
}

// Recommendations returns u's most recent recommendations from the
// owning partition's bounded store (consulting the mid-move source
// while the import is still in flight).
func (c *Cluster) Recommendations(ctx context.Context, u core.UserID, n int) ([]core.ItemID, error) {
	t := c.snap()
	if mt, mov := t.moving[u]; mov && !t.parts[mt.to].KnownUser(u) {
		return t.engineAt(int(mt.from)).Recommendations(ctx, u, n)
	}
	return t.owner(u).Recommendations(ctx, u, n)
}

// Close implements server.Service: it stops every partition's scheduler
// (sweeper + fallback pool) and refuses further Scale calls. Safe to
// call multiple times.
func (c *Cluster) Close() error {
	c.scaleMu.Lock()
	defer c.scaleMu.Unlock()
	c.closed = true
	for _, e := range c.snap().parts {
		e.Close()
	}
	return nil
}

// dispatchResweep bounds how long NextJob sleeps without re-scanning —
// a safety net for a wakeup token consumed by a sibling waiter (the
// notification channel carries one token for any number of parked
// dispatchers).
const dispatchResweep = 250 * time.Millisecond

// NextJob implements server.JobSource over all partitions: it returns
// the next leased job from whichever partition has stale work, scanning
// round-robin so one busy partition cannot starve the others — the
// cursor advances across calls, so successive worker polls start at
// successive partitions. With nothing pending it sleeps on the
// partitions' shared readiness signal until ctx is done. (nil, nil)
// means no work arrived in time. Each scan pins the current topology,
// so partitions added by a concurrent Scale join the rotation on the
// next pass.
func (c *Cluster) NextJob(ctx context.Context) (*wire.Job, error) {
	if !c.cfg.SchedulerEnabled() {
		return nil, nil
	}
	timer := time.NewTimer(dispatchResweep)
	defer timer.Stop()
	for {
		t := c.snap()
		start := int(c.dispatchCursor.Add(1) % uint64(len(t.parts)))
		for off := range t.parts {
			e := t.parts[(start+off)%len(t.parts)]
			job, err := e.TryNextJob()
			if err != nil {
				return nil, err
			}
			if job != nil {
				return job, nil
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(dispatchResweep)
		select {
		case <-ctx.Done():
			return nil, nil
		case <-c.dispatchReady:
		case <-timer.C:
		}
	}
}

// Ack implements server.LeaseAcker, routing the lease through the lane
// registry to the scheduler that minted it. A lease from a lane retired
// by a scale-in reports unknown rather than misrouting to whichever
// partition happens to share the old modulus.
func (c *Cluster) Ack(ctx context.Context, lease uint64, done bool) error {
	if lease == 0 {
		return fmt.Errorf("%w: 0", server.ErrUnknownLease)
	}
	t := c.snap()
	pi, ok := t.lanes[(lease-1)%laneStep]
	if !ok {
		return fmt.Errorf("%w: %d (lease lane retired)", server.ErrUnknownLease, lease)
	}
	return t.engineAt(pi).Ack(ctx, lease, done)
}

// LanePartition returns the partition index whose scheduler minted the
// given lease ID through the lane registry, or -1 when the lease is
// zero or its lane has been retired by a scale-in.
func (c *Cluster) LanePartition(lease uint64) int {
	if lease == 0 {
		return -1
	}
	if pi, ok := c.snap().lanes[(lease-1)%laneStep]; ok {
		return pi
	}
	return -1
}

// CountWorkerJob implements server.WorkerJobMeter, crediting the bytes
// to the partition whose scheduler minted the job's lease (dropped when
// the lane has been retired by a scale-in).
func (c *Cluster) CountWorkerJob(job *wire.Job, jsonBytes, gzBytes int) {
	if job.Lease == 0 {
		return
	}
	t := c.snap()
	if pi, ok := t.lanes[(job.Lease-1)%laneStep]; ok {
		t.engineAt(pi).CountWorkerJob(job, jsonBytes, gzBytes)
	}
}

// Profile returns u's profile snapshot from the owning partition
// (consulting the mid-move source while the import is in flight).
func (c *Cluster) Profile(u core.UserID) core.Profile {
	t := c.snap()
	if mt, mov := t.moving[u]; mov && !t.parts[mt.to].KnownUser(u) {
		return t.engineAt(int(mt.from)).Profiles().Get(u)
	}
	return t.owner(u).Profiles().Get(u)
}

// KnownUser reports whether any partition has registered u (the owner
// outside a migration; owner or source mid-move).
func (c *Cluster) KnownUser(u core.UserID) bool {
	t := c.snap()
	if t.owner(u).KnownUser(u) {
		return true
	}
	mt, mov := t.moving[u]
	return mov && t.engineAt(int(mt.from)).KnownUser(u)
}

// RegisterUser registers u on its owning partition (idempotent) — the
// hook the HTTP layer's cookie minting uses. Like Rate, the topology is
// re-checked after the write: a brand-new user is in nobody's roster
// when a racing Scale diffs ownership, so without the re-apply her
// registration could be stranded on a partition the new ring does not
// map her to.
func (c *Cluster) RegisterUser(u core.UserID) {
	t := c.snap()
	t.owner(u).RegisterUser(u)
	if t2 := c.snap(); t2 != t {
		if e2 := t2.owner(u); e2 != t.owner(u) {
			e2.RegisterUser(u)
		}
	}
}

// RotateAnonymizers advances every partition's anonymous mapping to a
// fresh epoch. A deployment calls this on the same timer a single engine
// would use.
func (c *Cluster) RotateAnonymizers() {
	for _, e := range c.snap().parts {
		e.RotateAnonymizer()
	}
}

// RotateAnonymizer implements server.Rotator (the single-engine spelling)
// by rotating every partition.
func (c *Cluster) RotateAnonymizer() { c.RotateAnonymizers() }

// Stats aggregates bandwidth and table counters over all partitions and
// reports the per-partition user split so an operator can see routing
// balance at a glance, plus the elastic-topology gauges (migrating,
// topology_partitions, migration_users_moved_total).
func (c *Cluster) Stats() map[string]any {
	t := c.snap()
	var jsonBytes, gzipBytes, resultBytes, messages, users, knn int64
	perPart := make([]int64, len(t.parts))
	for i, e := range t.parts {
		m := e.Meter()
		jsonBytes += m.JSONBytes()
		gzipBytes += m.GzipBytes()
		resultBytes += m.ResultBytes()
		messages += m.Messages()
		n := int64(e.Profiles().Len())
		perPart[i] = n
		users += n
		knn += int64(e.KNN().Len())
	}
	m := map[string]any{
		"partitions":                  len(t.parts),
		"topology_partitions":         int64(len(t.parts)),
		"migrating":                   c.migrating.Load(),
		"migration_users_moved_total": c.usersMoved.Load(),
		"json_bytes":                  jsonBytes,
		"gzip_bytes":                  gzipBytes,
		"result_bytes":                resultBytes,
		"messages":                    messages,
		"users":                       users,
		"users_per_part":              perPart,
		"knn_entries":                 knn,
	}
	if c.cfg.SchedulerEnabled() {
		var agg sched.Stats
		for _, e := range t.parts {
			if s := e.Scheduler(); s != nil {
				agg.Add(s.Stats())
			}
		}
		server.AddSchedStats(m, agg)
	}
	return m
}

// Topology implements server.TopologyProvider: the current shape of the
// cluster as served on GET /v1/topology.
func (c *Cluster) Topology() wire.Topology {
	t := c.snap()
	return wire.Topology{
		Partitions:      len(t.parts),
		VNodes:          t.ring.VNodes(),
		Migrating:       c.migrating.Load(),
		UsersMovedTotal: c.usersMoved.Load(),
	}
}

// Compile-time check: a cluster is a full-capability server.Service, so
// the shared HTTP mux (and every harness written against the interface)
// serves it identically to a single engine.
var (
	_ server.Service          = (*Cluster)(nil)
	_ server.Payloader        = (*Cluster)(nil)
	_ server.PayloadAppender  = (*Cluster)(nil)
	_ server.UserDirectory    = (*Cluster)(nil)
	_ server.Rotator          = (*Cluster)(nil)
	_ server.UserResolver     = (*Cluster)(nil)
	_ server.Configured       = (*Cluster)(nil)
	_ server.StatsProvider    = (*Cluster)(nil)
	_ server.JobSource        = (*Cluster)(nil)
	_ server.LeaseAcker       = (*Cluster)(nil)
	_ server.WorkerJobMeter   = (*Cluster)(nil)
	_ server.TopologyProvider = (*Cluster)(nil)
	_ server.Scaler           = (*Cluster)(nil)
)

// Len returns the total number of registered users across partitions.
// Profile tables are disjoint by construction (foreign profiles are read
// through, never copied; migration deletes the source copy before the
// moving marker clears), so the sum is exact outside a migration window
// and at most transiently high inside one.
func (c *Cluster) Len() int {
	n := 0
	for _, e := range c.snap().parts {
		n += e.Profiles().Len()
	}
	return n
}

// Users returns the union of all partitions' rosters (owner-partition
// order, then roster order; no duplicates by construction).
func (c *Cluster) Users() []core.UserID {
	t := c.snap()
	out := make([]core.UserID, 0, c.Len())
	for _, e := range t.parts {
		out = append(out, e.Profiles().Users()...)
	}
	return out
}
