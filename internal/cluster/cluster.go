// Package cluster implements a user-partitioned cluster of HyRec server
// engines behind a single front-end — the horizontal-scaling layer the
// paper's "millions of users" ambition calls for once one machine's
// memory and lock domains become the bottleneck.
//
// A Cluster owns N partitions, each a full server.Engine with its own
// profile table, KNN table, anonymiser and sampler RNG. Users are mapped
// to partitions by a fixed multiplicative hash of their ID (the same
// idiom the server's lock-sharding uses), so routing is stateless,
// deterministic, and stable under churn: a user keeps her partition for
// the lifetime of the deployment, and adding users never moves existing
// ones.
//
// Partitioning alone would fragment the KNN graph into N disjoint
// neighbourhoods — a user could only ever discover neighbours inside her
// own partition, capping recall well below the single-engine baseline.
// The cluster therefore implements cross-partition candidate exchange:
// every partition's sampler tops up the §3.1 candidate set with random
// users drawn from sibling partitions (through the PeerSampler
// interface), and the engines resolve those foreign users' profiles at
// job-assembly time through the profile-resolver hook. Foreign users
// flow through the widget protocol and the KNN tables exactly like local
// ones — only their profile bytes live elsewhere — so the exchanged
// candidates let every user's neighbourhood converge toward the global
// KNN graph instead of a per-partition local optimum. The
// ClusterRecall experiment (internal/experiments) verifies recall@10
// stays within a few percent of the single-engine baseline.
package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/sched"
	"hyrec/internal/server"
	"hyrec/internal/wire"
)

// ErrUnroutable is returned when no partition can claim a widget result:
// its (UID, epoch) pseudonym does not resolve to a user owned and known
// by any partition — either the epoch is stale on the minting partition
// or the result is garbage. It wraps server.ErrStaleEpoch so transport
// layers map it to the same status an unresolvable single-engine epoch
// gets (410 Gone).
var ErrUnroutable = fmt.Errorf("cluster: result not routable to any partition: %w", server.ErrStaleEpoch)

// seedStride separates the per-partition RNG seed lanes so sibling
// engines (and their anonymisers, which use seed+1) never share a stream.
// Partition 0 keeps the configured seed unchanged, which makes a
// 1-partition cluster bit-for-bit equivalent to a plain engine.
const seedStride = 1_000_003

// PartitionSeed derives the engine seed for partition i from the
// cluster-level seed.
func PartitionSeed(seed int64, i int) int64 { return seed + int64(i)*seedStride }

// Cluster is a user-partitioned set of server engines behind one
// front-end. All methods are safe for concurrent use.
type Cluster struct {
	cfg   server.Config
	parts []*server.Engine
	peers PeerSampler
	// exchange is the cross-partition top-up budget per job (see
	// SetExchange).
	exchange int
	// dispatchCursor rotates NextJob's scan start across calls so a
	// busy partition cannot starve its siblings' staleness queues.
	dispatchCursor atomic.Uint64
	// dispatchReady receives one token whenever any partition's
	// scheduler gains pending work, so NextJob sleeps instead of
	// polling (buffered: a notify with no waiter is kept for the next).
	dispatchReady chan struct{}
}

// New builds a cluster of nParts engines from cfg. Partition i runs with
// seed PartitionSeed(cfg.Seed, i); all other configuration is shared.
// It panics on nParts < 1 or an invalid cfg (programmer error),
// mirroring server.NewEngine.
func New(cfg server.Config, nParts int) *Cluster {
	if nParts < 1 {
		panic(fmt.Sprintf("cluster: nParts must be >= 1, got %d", nParts))
	}
	// Each partition runs its own scheduler, but the fallback compute
	// budget is shared: cfg.FallbackWorkers bounds concurrent server-side
	// executions for the whole cluster, not per partition, so a churn
	// storm on every partition at once cannot multiply the residual
	// server compute by N (the Section 5.4 cost constraint). Assigned
	// before c.cfg is snapshotted so Config() reports the shared budget.
	if cfg.SchedulerEnabled() && cfg.FallbackWorkers > 0 && cfg.FallbackBudget == nil && nParts > 1 {
		cfg.FallbackBudget = sched.NewBudget(cfg.FallbackWorkers)
	}
	c := &Cluster{cfg: cfg, parts: make([]*server.Engine, nParts), exchange: cfg.K}
	c.dispatchReady = make(chan struct{}, 1)
	notify := func() {
		select {
		case c.dispatchReady <- struct{}{}:
		default:
		}
	}
	for i := range c.parts {
		pcfg := cfg
		pcfg.Seed = PartitionSeed(cfg.Seed, i)
		c.parts[i] = server.NewEngine(pcfg)
		if s := c.parts[i].Scheduler(); s != nil {
			// Disjoint lease-ID lanes: partition i mints i+1, i+1+N, …,
			// so Ack routes by (id-1) mod N without a lookup.
			s.SetIDSpace(uint64(i)+1, uint64(nParts))
			s.OnReady(notify)
		}
	}
	c.peers = EnginePeers{Cluster: c}
	for i, e := range c.parts {
		e.SetSampler(&exchangeSampler{base: server.NewDefaultSampler(e), cluster: c, home: i})
		e.SetProfileResolver(c.foreignProfile(i))
	}
	return c
}

// Config returns the cluster-level configuration (partition 0's seed).
func (c *Cluster) Config() server.Config { return c.cfg }

// NumPartitions returns the number of partitions.
func (c *Cluster) NumPartitions() int { return len(c.parts) }

// Engine returns partition i's engine (metrics, tables, meters).
func (c *Cluster) Engine(i int) *server.Engine { return c.parts[i] }

// Partition returns the index of the partition that owns u. The mapping
// is a pure function of (u, NumPartitions) — the same multiplicative-hash
// idiom as the server tables' lock sharding — so it is stable under user
// churn and identical across restarts.
func (c *Cluster) Partition(u core.UserID) int {
	if len(c.parts) == 1 {
		return 0
	}
	return int(uint32(u)*0x9E3779B1>>8) % len(c.parts)
}

// owner returns the engine that owns u.
func (c *Cluster) owner(u core.UserID) *server.Engine { return c.parts[c.Partition(u)] }

// SetExchange overrides the number of cross-partition exchange candidates
// added to every candidate set (default: the configured K). Zero disables
// the exchange, which fragments the KNN graph into per-partition
// neighbourhoods — useful only as an ablation. Must be called before
// serving traffic.
func (c *Cluster) SetExchange(n int) {
	if n < 0 {
		panic("cluster: negative exchange budget")
	}
	c.exchange = n
}

// SetPeerSampler replaces the source of cross-partition exchange
// candidates (default: EnginePeers, which draws directly from sibling
// rosters). Must be called before serving traffic.
func (c *Cluster) SetPeerSampler(p PeerSampler) {
	if p == nil {
		panic("cluster: nil peer sampler")
	}
	c.peers = p
}

// foreignProfile builds the profile resolver for partition home: profiles
// of users owned by sibling partitions are read through the owning
// engine's published table view (lock-free for any user the view knows;
// SnapshotProfile falls back to the authoritative sharded-lock lookup for
// users newer than the view, and returns an empty profile for users the
// owner has not registered either — exactly the single-engine fallback).
// Local users report ok=false so the engine's own authoritative lookup
// stays in charge.
func (c *Cluster) foreignProfile(home int) server.ProfileResolver {
	return func(u core.UserID) (core.Profile, bool) {
		p := c.Partition(u)
		if p == home {
			return core.Profile{}, false
		}
		return c.parts[p].SnapshotProfile(u), true
	}
}

// Rate records a rating on the partition that owns u (Arrow 1 of
// Figure 1, routed).
func (c *Cluster) Rate(ctx context.Context, u core.UserID, item core.ItemID, liked bool) error {
	return c.owner(u).Rate(ctx, u, item, liked)
}

// RateBatch records many opinions, routing each to its owning partition.
func (c *Cluster) RateBatch(ctx context.Context, ratings []core.Rating) error {
	for _, r := range ratings {
		if err := c.owner(r.User).Rate(ctx, r.User, r.Item, r.Liked); err != nil {
			return err
		}
	}
	return nil
}

// Job assembles u's personalization job on the owning partition. The
// candidate set mixes the partition-local §3.1 rule with cross-partition
// exchange candidates; every pseudonym in the job belongs to the owning
// partition's anonymiser.
func (c *Cluster) Job(ctx context.Context, u core.UserID) (*wire.Job, error) {
	return c.owner(u).Job(ctx, u)
}

// JobPayload assembles and serializes u's personalization job (JSON +
// gzip) on the owning partition, exactly as Engine.JobPayload.
func (c *Cluster) JobPayload(u core.UserID) (jsonBody, gzBody []byte, err error) {
	return c.owner(u).JobPayload(u)
}

// AppendJobPayload implements server.PayloadAppender on the owning
// partition (the pooled zero-allocation serving path).
func (c *Cluster) AppendJobPayload(u core.UserID, jsonDst, gzDst []byte) (jsonBody, gzBody []byte, err error) {
	return c.owner(u).AppendJobPayload(u, jsonDst, gzDst)
}

// ApplyResult routes a widget result to the partition whose anonymiser
// minted its pseudonyms and folds it into that partition's KNN table. A
// partition claims a result when the (UID, epoch) pair resolves to a user
// it both owns (by routing) and knows (has a profile for) — true for the
// minting partition, and vanishingly unlikely for any other since a wrong
// Feistel inversion yields an effectively random 32-bit ID. Results no
// partition claims fall back to ownership-only routing so the owning
// engine can report its own error (unknown user, matching the
// single-engine contract); ErrUnroutable is returned only when the epoch
// is unresolvable everywhere.
func (c *Cluster) ApplyResult(ctx context.Context, res *wire.Result) ([]core.ItemID, error) {
	e, _, ok := c.route(res)
	if !ok {
		return nil, fmt.Errorf("%w: uid alias %d epoch %d", ErrUnroutable, res.UID, res.Epoch)
	}
	return e.ApplyResult(ctx, res)
}

// ResolveUser inverts a user pseudonym against the partition that minted
// it. Like route, a known-user claim wins over ownership-only matches —
// a wrong partition's Feistel inversion yields a random ID that passes
// the ownership check 1/N of the time, but is almost never registered.
// Transport layers use this for presence bookkeeping.
func (c *Cluster) ResolveUser(alias core.UserID, epoch uint64) (core.UserID, bool) {
	var fb core.UserID
	var hasFB bool
	for i, e := range c.parts {
		u, ok := e.ResolveUser(alias, epoch)
		if !ok || c.Partition(u) != i {
			continue
		}
		if e.Profiles().Known(u) {
			return u, true
		}
		if !hasFB {
			fb, hasFB = u, true
		}
	}
	return fb, hasFB
}

// route finds the partition that minted res's pseudonyms, returning its
// engine, the resolved real user, and whether any partition claimed it.
// Known-user claims win (accurate routing for genuine results); when no
// partition knows the resolved user, the first ownership-only match is
// used so the engine's ErrUnknownUser surfaces instead of a routing
// error.
func (c *Cluster) route(res *wire.Result) (*server.Engine, core.UserID, bool) {
	var fbEngine *server.Engine
	var fbUser core.UserID
	for i, e := range c.parts {
		u, ok := e.ResolveUser(core.UserID(res.UID), res.Epoch)
		if !ok || c.Partition(u) != i {
			continue
		}
		if e.Profiles().Known(u) {
			return e, u, true
		}
		if fbEngine == nil {
			fbEngine, fbUser = e, u
		}
	}
	if fbEngine != nil {
		return fbEngine, fbUser, true
	}
	return nil, 0, false
}

// Neighbors returns u's current KNN approximation from the owning
// partition. The list may contain users owned by sibling partitions —
// that is the cross-partition exchange working.
func (c *Cluster) Neighbors(ctx context.Context, u core.UserID) ([]core.UserID, error) {
	return c.owner(u).Neighbors(ctx, u)
}

// Recommendations returns u's most recent recommendations from the
// owning partition's bounded store.
func (c *Cluster) Recommendations(ctx context.Context, u core.UserID, n int) ([]core.ItemID, error) {
	return c.owner(u).Recommendations(ctx, u, n)
}

// Close implements server.Service: it stops every partition's scheduler
// (sweeper + fallback pool). Safe to call multiple times.
func (c *Cluster) Close() error {
	for _, e := range c.parts {
		e.Close()
	}
	return nil
}

// dispatchResweep bounds how long NextJob sleeps without re-scanning —
// a safety net for a wakeup token consumed by a sibling waiter (the
// notification channel carries one token for any number of parked
// dispatchers).
const dispatchResweep = 250 * time.Millisecond

// NextJob implements server.JobSource over all partitions: it returns
// the next leased job from whichever partition has stale work, scanning
// round-robin so one busy partition cannot starve the others — the
// cursor advances across calls, so successive worker polls start at
// successive partitions. With nothing pending it sleeps on the
// partitions' shared readiness signal until ctx is done. (nil, nil)
// means no work arrived in time.
func (c *Cluster) NextJob(ctx context.Context) (*wire.Job, error) {
	if !c.cfg.SchedulerEnabled() {
		return nil, nil
	}
	timer := time.NewTimer(dispatchResweep)
	defer timer.Stop()
	for {
		start := int(c.dispatchCursor.Add(1) % uint64(len(c.parts)))
		for off := range c.parts {
			e := c.parts[(start+off)%len(c.parts)]
			job, err := e.TryNextJob()
			if err != nil {
				return nil, err
			}
			if job != nil {
				return job, nil
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(dispatchResweep)
		select {
		case <-ctx.Done():
			return nil, nil
		case <-c.dispatchReady:
		case <-timer.C:
		}
	}
}

// Ack implements server.LeaseAcker, routing the lease to the partition
// that minted it: partition i's scheduler mints IDs ≡ i+1 (mod N).
func (c *Cluster) Ack(ctx context.Context, lease uint64, done bool) error {
	if lease == 0 {
		return fmt.Errorf("%w: 0", server.ErrUnknownLease)
	}
	return c.parts[int((lease-1)%uint64(len(c.parts)))].Ack(ctx, lease, done)
}

// CountWorkerJob implements server.WorkerJobMeter, crediting the bytes
// to the partition whose scheduler minted the job's lease.
func (c *Cluster) CountWorkerJob(job *wire.Job, jsonBytes, gzBytes int) {
	if job.Lease == 0 {
		return
	}
	c.parts[int((job.Lease-1)%uint64(len(c.parts)))].CountWorkerJob(job, jsonBytes, gzBytes)
}

// Profile returns u's profile snapshot from the owning partition.
func (c *Cluster) Profile(u core.UserID) core.Profile {
	return c.owner(u).Profiles().Get(u)
}

// KnownUser reports whether any partition has registered u (only the
// owning one ever does).
func (c *Cluster) KnownUser(u core.UserID) bool {
	return c.owner(u).Profiles().Known(u)
}

// RegisterUser registers u on its owning partition (idempotent) — the
// hook the HTTP layer's cookie minting uses.
func (c *Cluster) RegisterUser(u core.UserID) { c.owner(u).RegisterUser(u) }

// RotateAnonymizers advances every partition's anonymous mapping to a
// fresh epoch. A deployment calls this on the same timer a single engine
// would use.
func (c *Cluster) RotateAnonymizers() {
	for _, e := range c.parts {
		e.RotateAnonymizer()
	}
}

// RotateAnonymizer implements server.Rotator (the single-engine spelling)
// by rotating every partition.
func (c *Cluster) RotateAnonymizer() { c.RotateAnonymizers() }

// Stats aggregates bandwidth and table counters over all partitions and
// reports the per-partition user split so an operator can see routing
// balance at a glance.
func (c *Cluster) Stats() map[string]any {
	var jsonBytes, gzipBytes, resultBytes, messages, users, knn int64
	perPart := make([]int64, len(c.parts))
	for i, e := range c.parts {
		m := e.Meter()
		jsonBytes += m.JSONBytes()
		gzipBytes += m.GzipBytes()
		resultBytes += m.ResultBytes()
		messages += m.Messages()
		n := int64(e.Profiles().Len())
		perPart[i] = n
		users += n
		knn += int64(e.KNN().Len())
	}
	m := map[string]any{
		"partitions":     len(c.parts),
		"json_bytes":     jsonBytes,
		"gzip_bytes":     gzipBytes,
		"result_bytes":   resultBytes,
		"messages":       messages,
		"users":          users,
		"users_per_part": perPart,
		"knn_entries":    knn,
	}
	if c.cfg.SchedulerEnabled() {
		var agg sched.Stats
		for _, e := range c.parts {
			if s := e.Scheduler(); s != nil {
				agg.Add(s.Stats())
			}
		}
		server.AddSchedStats(m, agg)
	}
	return m
}

// Compile-time check: a cluster is a full-capability server.Service, so
// the shared HTTP mux (and every harness written against the interface)
// serves it identically to a single engine.
var (
	_ server.Service         = (*Cluster)(nil)
	_ server.Payloader       = (*Cluster)(nil)
	_ server.PayloadAppender = (*Cluster)(nil)
	_ server.UserDirectory   = (*Cluster)(nil)
	_ server.Rotator         = (*Cluster)(nil)
	_ server.UserResolver    = (*Cluster)(nil)
	_ server.Configured      = (*Cluster)(nil)
	_ server.StatsProvider   = (*Cluster)(nil)
	_ server.JobSource       = (*Cluster)(nil)
	_ server.LeaseAcker      = (*Cluster)(nil)
	_ server.WorkerJobMeter  = (*Cluster)(nil)
)

// Len returns the total number of registered users across partitions.
// Profile tables are disjoint by construction (foreign profiles are read
// through, never copied), so the sum is exact.
func (c *Cluster) Len() int {
	n := 0
	for _, e := range c.parts {
		n += e.Profiles().Len()
	}
	return n
}

// Users returns the union of all partitions' rosters (owner-partition
// order, then roster order; no duplicates by construction).
func (c *Cluster) Users() []core.UserID {
	out := make([]core.UserID, 0, c.Len())
	for _, e := range c.parts {
		out = append(out, e.Profiles().Users()...)
	}
	return out
}
