package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// rawClient fetches without transparent gzip decompression, so /online
// payloads arrive exactly as a browser widget would see them.
func rawClient() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableCompression: true}}
}

func newTestFrontend(t *testing.T, nParts int) (*Cluster, *httptest.Server) {
	t.Helper()
	c := New(testConfig(), nParts)
	hs := NewHTTPServer(c, 0)
	ts := httptest.NewServer(hs.Handler())
	t.Cleanup(func() {
		ts.Close()
		hs.Close()
	})
	return c, ts
}

// TestHTTPFullLoop drives the complete widget protocol over the fan-out
// front-end for users landing on different partitions: /rate, /online,
// widget execution, POST /neighbors, /recommendations.
func TestHTTPFullLoop(t *testing.T) {
	c, ts := newTestFrontend(t, 4)
	w := widget.New()

	// Seed ratings for a population spanning all partitions.
	seenParts := make(map[int]bool)
	for u := 1; u <= 60; u++ {
		seenParts[c.Partition(core.UserID(u))] = true
		for j := 0; j < 4; j++ {
			resp, err := http.Post(fmt.Sprintf("%s/rate?uid=%d&item=%d&liked=true", ts.URL, u, u%10+j), "", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				t.Fatalf("/rate uid=%d: status %d", u, resp.StatusCode)
			}
		}
	}
	if len(seenParts) != 4 {
		t.Fatalf("test population covers %d/4 partitions", len(seenParts))
	}

	for u := 1; u <= 60; u++ {
		// /online returns the gzip personalization job.
		resp, err := rawClient().Get(fmt.Sprintf("%s/online?uid=%d", ts.URL, u))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/online uid=%d: status %d", u, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
			t.Fatalf("/online uid=%d: Content-Encoding %q", u, got)
		}
		gz, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}

		res, _, err := w.ExecutePayload(gz)
		if err != nil {
			t.Fatalf("widget uid=%d: %v", u, err)
		}
		body, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		post, err := http.Post(ts.URL+"/neighbors", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		post.Body.Close()
		if post.StatusCode != http.StatusNoContent {
			t.Fatalf("POST /neighbors uid=%d: status %d", u, post.StatusCode)
		}
	}

	// Recommendations are served from the owning partition's bookkeeping.
	withRecs := 0
	for u := 1; u <= 60; u++ {
		resp, err := http.Get(fmt.Sprintf("%s/recommendations?uid=%d", ts.URL, u))
		if err != nil {
			t.Fatal(err)
		}
		var recs []core.ItemID
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatalf("/recommendations uid=%d: %v", u, err)
		}
		resp.Body.Close()
		if len(recs) > 0 {
			withRecs++
		}
	}
	if withRecs == 0 {
		t.Fatal("no user got recommendations through the fan-out front-end")
	}

	// Neighborhoods exist on the owning partitions.
	withHood := 0
	for u := core.UserID(1); u <= 60; u++ {
		hood, _ := c.Neighbors(context.Background(), u)
		if len(hood) > 0 {
			withHood++
		}
	}
	if withHood < 50 {
		t.Fatalf("only %d/60 users have neighborhoods after a full HTTP round", withHood)
	}
}

// TestHTTPMintCookie verifies the first-contact flow: /online without
// identification mints a cluster-wide user ID, sets the cookie, and
// registers the user on exactly its owning partition.
func TestHTTPMintCookie(t *testing.T) {
	c, ts := newTestFrontend(t, 4)

	resp, err := http.Get(ts.URL + "/online")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/online (anonymous): status %d", resp.StatusCode)
	}
	var minted core.UserID
	for _, ck := range resp.Cookies() {
		if ck.Name == server.UIDCookieName {
			v, err := strconv.ParseUint(ck.Value, 10, 32)
			if err != nil {
				t.Fatalf("bad cookie value %q", ck.Value)
			}
			minted = core.UserID(v)
		}
	}
	if minted == 0 {
		t.Fatal("no identification cookie set on first contact")
	}
	owner := c.Partition(minted)
	for i := 0; i < c.NumPartitions(); i++ {
		known := c.Engine(i).Profiles().Known(minted)
		if known != (i == owner) {
			t.Fatalf("minted user %d: partition %d Known=%v (owner %d)", minted, i, known, owner)
		}
	}

	// The cookie identifies the user on subsequent requests.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/online", nil)
	req.AddCookie(&http.Cookie{Name: server.UIDCookieName, Value: strconv.FormatUint(uint64(minted), 10)})
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/online (cookie): status %d", resp2.StatusCode)
	}
	for _, ck := range resp2.Cookies() {
		if ck.Name == server.UIDCookieName {
			t.Fatal("cookie re-minted for an identified request")
		}
	}
}

// TestHTTPMissingUID verifies endpoints that require identification
// reject anonymous requests instead of forwarding them.
func TestHTTPMissingUID(t *testing.T) {
	_, ts := newTestFrontend(t, 2)
	for _, path := range []string{"/rate?item=1", "/recommendations"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s without uid: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestHTTPStatsAggregation verifies /stats sums over partitions and
// reports the per-partition user split.
func TestHTTPStatsAggregation(t *testing.T) {
	_, ts := newTestFrontend(t, 4)
	for u := 1; u <= 40; u++ {
		resp, err := http.Get(fmt.Sprintf("%s/online?uid=%d", ts.URL, u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Partitions   int     `json:"partitions"`
		Users        int64   `json:"users"`
		UsersPerPart []int64 `json:"users_per_part"`
		GzipBytes    int64   `json:"gzip_bytes"`
		Messages     int64   `json:"messages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 4 {
		t.Fatalf("partitions = %d, want 4", stats.Partitions)
	}
	if stats.Users != 40 {
		t.Fatalf("users = %d, want 40", stats.Users)
	}
	var sum int64
	for _, n := range stats.UsersPerPart {
		sum += n
	}
	if sum != stats.Users {
		t.Fatalf("users_per_part sums to %d, want %d", sum, stats.Users)
	}
	if stats.GzipBytes == 0 || stats.Messages == 0 {
		t.Fatalf("aggregated meters are zero: %+v", stats)
	}
}

// TestHTTPStaleResultGone verifies a result from an evicted epoch gets
// 410 Gone from the front-end, mirroring the single-engine contract.
func TestHTTPStaleResultGone(t *testing.T) {
	c, ts := newTestFrontend(t, 2)
	w := widget.New()

	for u := 1; u <= 10; u++ {
		resp, err := http.Post(fmt.Sprintf("%s/rate?uid=%d&item=3&liked=true", ts.URL, u), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := rawClient().Get(ts.URL + "/online?uid=1")
	if err != nil {
		t.Fatal(err)
	}
	gz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	res, _, err := w.ExecutePayload(gz)
	if err != nil {
		t.Fatal(err)
	}
	c.RotateAnonymizers()
	c.RotateAnonymizers()
	body, _ := json.Marshal(res)
	post, err := http.Post(ts.URL+"/neighbors", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusGone {
		t.Fatalf("stale result: status %d, want 410", post.StatusCode)
	}
}

// TestHTTPServerConfigSharing sanity-checks that the front-end reuses the
// partition engines (no hidden copies) so direct engine access and HTTP
// access observe the same state.
func TestHTTPServerConfigSharing(t *testing.T) {
	c, ts := newTestFrontend(t, 2)
	resp, err := http.Post(ts.URL+"/rate?uid=7&item=5&liked=true", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := c.Profile(7).Size(); got != 1 {
		t.Fatalf("profile size via cluster = %d, want 1", got)
	}
	var _ server.Config = c.Config()
}

// TestHTTPTopologyEndpoint: GET /v1/topology reports the live shape,
// POST /v1/topology performs a synchronous scale-out and reports the
// new one, and /stats carries the migrating flag and topology gauges.
func TestHTTPTopologyEndpoint(t *testing.T) {
	c, ts := newTestFrontend(t, 2)
	for u := core.UserID(1); u <= 50; u++ {
		if err := c.Rate(context.Background(), u, core.ItemID(u), true); err != nil {
			t.Fatal(err)
		}
	}

	var topo wire.Topology
	resp, err := http.Get(ts.URL + "/v1/topology")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/topology = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &topo); err != nil {
		t.Fatal(err)
	}
	if topo.Partitions != 2 || topo.Migrating {
		t.Fatalf("topology = %+v, want 2 partitions, not migrating", topo)
	}

	resp, err = http.Post(ts.URL+"/v1/topology", "application/json",
		bytes.NewReader([]byte(`{"partitions":4}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/topology = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &topo); err != nil {
		t.Fatal(err)
	}
	if topo.Partitions != 4 || topo.Migrating {
		t.Fatalf("post-scale topology = %+v, want 4 partitions, migration complete", topo)
	}
	if c.NumPartitions() != 4 {
		t.Fatalf("cluster did not scale: %d partitions", c.NumPartitions())
	}

	// Bad targets are refused with the typed envelope.
	resp, err = http.Post(ts.URL+"/v1/topology", "application/json",
		bytes.NewReader([]byte(`{"partitions":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte(wire.CodeBadRequest)) {
		t.Fatalf("scale to 0 = %d: %s", resp.StatusCode, body)
	}

	// /stats carries the elastic-topology fields.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if migrating, ok := stats["migrating"].(bool); !ok || migrating {
		t.Fatalf("/stats migrating = %v (%T)", stats["migrating"], stats["migrating"])
	}
	if parts, _ := stats["topology_partitions"].(float64); parts != 4 {
		t.Fatalf("/stats topology_partitions = %v", stats["topology_partitions"])
	}
	if _, ok := stats["migration_users_moved_total"].(float64); !ok {
		t.Fatalf("/stats migration_users_moved_total missing: %v", stats)
	}
}

// TestHTTPMetricsAlias: GET /metrics serves the same counters as
// /stats in Prometheus text format, including the elastic-topology
// gauges the satellite names.
func TestHTTPMetricsAlias(t *testing.T) {
	c, ts := newTestFrontend(t, 2)
	for u := core.UserID(1); u <= 20; u++ {
		if err := c.Rate(context.Background(), u, core.ItemID(u), true); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Scale(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"hyrec_topology_partitions 3",
		"hyrec_migration_users_moved_total",
		"hyrec_migrating 0",
		"hyrec_users ",
		"hyrec_knn_entries",
		`hyrec_users_per_part{partition="2"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
