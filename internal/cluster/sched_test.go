package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/widget"
)

func schedClusterConfig() server.Config {
	cfg := testConfig()
	cfg.K = 3
	cfg.R = 3
	// Long enough that no lease expires mid-test under a loaded -race
	// CPU; expiry-path tests override it explicitly.
	cfg.LeaseTTL = 2 * time.Second
	return cfg
}

// rateAcross spreads ratings over users 1..n (hitting every partition of
// a small cluster with overwhelming probability).
func rateAcross(t *testing.T, c *Cluster, n int) {
	t.Helper()
	for u := core.UserID(1); u <= core.UserID(n); u++ {
		for j := 0; j < 3; j++ {
			if err := c.Rate(tctx, u, core.ItemID((int(u)+j)%9), true); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestClusterDispatchDrainsAllPartitions: NextJob serves every
// partition's staleness queue and Ack routes by lease-ID lane, so one
// worker fleet drains the whole cluster.
func TestClusterDispatchDrainsAllPartitions(t *testing.T) {
	c := New(schedClusterConfig(), 4)
	defer c.Close()
	rateAcross(t, c, 40)

	w := widget.New()
	served := 0
	for {
		ctx, cancel := context.WithTimeout(tctx, 500*time.Millisecond)
		job, err := c.NextJob(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
		if job.Lease == 0 {
			t.Fatalf("cluster dispatched unleased job: %+v", job)
		}
		res, _ := w.Execute(job)
		if _, err := c.ApplyResult(tctx, res); err != nil {
			t.Fatal(err)
		}
		served++
	}
	if served != 40 {
		t.Fatalf("served %d jobs, want 40", served)
	}
	for i := 0; i < c.NumPartitions(); i++ {
		s := c.Engine(i).Scheduler()
		if s == nil {
			t.Fatalf("partition %d has no scheduler", i)
		}
		if !s.Quiet() {
			t.Fatalf("partition %d not quiet: %+v", i, s.Stats())
		}
		if s.Stats().Dispatched == 0 {
			t.Fatalf("partition %d never dispatched — fan-in starved it", i)
		}
	}
}

// TestClusterAckRoutesByLeaseLane: lease IDs are partition-disjoint
// through the lane registry and Ack lands on the minting partition.
func TestClusterAckRoutesByLeaseLane(t *testing.T) {
	c := New(schedClusterConfig(), 3)
	defer c.Close()
	rateAcross(t, c, 12)

	for {
		ctx, cancel := context.WithTimeout(tctx, 500*time.Millisecond)
		job, err := c.NextJob(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
		wantPart := c.LanePartition(job.Lease)
		if wantPart < 0 {
			t.Fatalf("lease %d routes to no lane", job.Lease)
		}
		u, ok := c.Engine(wantPart).ResolveUser(core.UserID(job.UID), job.Epoch)
		if !ok || c.Partition(u) != wantPart {
			t.Fatalf("lease %d lane does not match minting partition", job.Lease)
		}
		if err := c.Ack(tctx, job.Lease, true); err != nil {
			t.Fatalf("ack lease %d: %v", job.Lease, err)
		}
	}
	if err := c.Ack(tctx, 9999, true); !errors.Is(err, server.ErrUnknownLease) {
		t.Fatalf("unknown lease ack = %v, want ErrUnknownLease", err)
	}
	if err := c.Ack(tctx, 0, true); !errors.Is(err, server.ErrUnknownLease) {
		t.Fatalf("zero lease ack = %v, want ErrUnknownLease", err)
	}
}

// TestClusterSharedFallbackBudget: the per-partition schedulers share
// one fallback budget capped at cfg.FallbackWorkers for the whole
// cluster.
func TestClusterSharedFallbackBudget(t *testing.T) {
	cfg := schedClusterConfig()
	cfg.FallbackWorkers = 2
	c := New(cfg, 4)
	defer c.Close()

	var budget interface{ Cap() int }
	for i := 0; i < 4; i++ {
		e := c.Engine(i)
		if e.Config().FallbackBudget == nil {
			t.Fatalf("partition %d has no shared budget", i)
		}
		if budget == nil {
			budget = e.Config().FallbackBudget
		} else if budget != e.Config().FallbackBudget {
			t.Fatalf("partition %d holds a different budget instance", i)
		}
	}
	if got := c.Engine(0).Config().FallbackBudget.Cap(); got != 2 {
		t.Fatalf("shared budget cap = %d, want 2", got)
	}
}

// TestClusterChurnConvergesViaFallback: leases are taken cluster-wide
// and never answered; every partition's fallback pool (under the shared
// budget) refreshes the rows anyway.
func TestClusterChurnConvergesViaFallback(t *testing.T) {
	cfg := schedClusterConfig()
	cfg.LeaseTTL = 25 * time.Millisecond
	cfg.LeaseRetries = -1
	cfg.FallbackWorkers = 2
	c := New(cfg, 2)
	defer c.Close()
	rateAcross(t, c, 16)

	// Lease everything and vanish.
	for {
		ctx, cancel := context.WithTimeout(tctx, 500*time.Millisecond)
		job, err := c.NextJob(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if job == nil {
			break
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		quiet := true
		for i := 0; i < c.NumPartitions(); i++ {
			s := c.Engine(i).Scheduler()
			if !s.Quiet() || len(s.Unrefreshed()) > 0 {
				quiet = false
			}
		}
		if quiet {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var fallbackRuns int64
	for i := 0; i < c.NumPartitions(); i++ {
		s := c.Engine(i).Scheduler()
		if un := s.Unrefreshed(); len(un) != 0 {
			t.Fatalf("partition %d users %v never refreshed: %+v", i, un, s.Stats())
		}
		fallbackRuns += s.Stats().FallbackRuns
	}
	if fallbackRuns == 0 {
		t.Fatal("no partition used the fallback pool")
	}
	stats := c.Stats()
	if stats["sched_fallback_runs"].(int64) != fallbackRuns {
		t.Fatalf("aggregated stats %v disagree with per-partition sum %d", stats["sched_fallback_runs"], fallbackRuns)
	}
}
