package widget

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// randomJob builds a job with n candidate profiles drawn from a seeded rng.
func randomJob(n, profileSize, items int, seed int64) *wire.Job {
	rng := rand.New(rand.NewSource(seed))
	job := &wire.Job{UID: 0, K: 10, R: 10}
	mkProfile := func(id uint32) wire.ProfileMsg {
		liked := make(map[uint32]bool, profileSize)
		for len(liked) < profileSize {
			liked[uint32(rng.Intn(items))] = true
		}
		msg := wire.ProfileMsg{ID: id}
		for it := range liked {
			msg.Liked = append(msg.Liked, it)
		}
		return msg
	}
	job.Profile = mkProfile(0)
	for i := 1; i <= n; i++ {
		job.Candidates = append(job.Candidates, mkProfile(uint32(i)))
	}
	return job
}

// The web-worker mode must be result-identical to the sequential widget.
func TestParallelMatchesSequential(t *testing.T) {
	seq := New()
	for _, workers := range []int{2, 3, 4, 8} {
		par := New(WithWorkers(workers))
		for seed := int64(0); seed < 8; seed++ {
			job := randomJob(60, 12, 150, seed)
			want, _ := seq.Execute(job)
			got, _ := par.Execute(job)
			if !reflect.DeepEqual(want.Neighbors, got.Neighbors) {
				t.Fatalf("workers=%d seed=%d: neighbors diverged\nseq: %v\npar: %v",
					workers, seed, want.Neighbors, got.Neighbors)
			}
			if !reflect.DeepEqual(want.Recommendations, got.Recommendations) {
				t.Fatalf("workers=%d seed=%d: recommendations diverged\nseq: %v\npar: %v",
					workers, seed, want.Recommendations, got.Recommendations)
			}
		}
	}
}

// Property: equality holds across arbitrary worker counts and sizes.
func TestParallelEquivalenceProperty(t *testing.T) {
	seq := New()
	prop := func(workers uint8, nCand uint8, seed int64) bool {
		w := int(workers%7) + 2 // 2..8
		n := int(nCand%80) + 1  // 1..80 (crosses the parallel threshold)
		job := randomJob(n, 8, 100, seed)
		want, _ := seq.Execute(job)
		got, _ := New(WithWorkers(w)).Execute(job)
		return reflect.DeepEqual(want.Neighbors, got.Neighbors) &&
			reflect.DeepEqual(want.Recommendations, got.Recommendations)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersAccessor(t *testing.T) {
	if got := New().Workers(); got != 1 {
		t.Fatalf("default workers = %d", got)
	}
	if got := New(WithWorkers(0)).Workers(); got != 1 {
		t.Fatalf("workers(0) = %d", got)
	}
	if got := New(WithWorkers(4)).Workers(); got != 4 {
		t.Fatalf("workers(4) = %d", got)
	}
}

func TestSplitProfilesCoversAll(t *testing.T) {
	profiles := make([]core.Profile, 23)
	for i := range profiles {
		profiles[i] = core.NewProfile(core.UserID(i))
	}
	for n := 1; n <= 30; n++ {
		chunks := splitProfiles(profiles, n)
		total := 0
		for _, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("n=%d produced empty chunk", n)
			}
			total += len(c)
		}
		if total != len(profiles) {
			t.Fatalf("n=%d covered %d of %d profiles", n, total, len(profiles))
		}
	}
}

func TestParallelSmallJobFallsBack(t *testing.T) {
	// Below the threshold the parallel widget takes the sequential path —
	// observable only through identical behaviour, so verify the tiny job
	// still works with absurd worker counts.
	par := New(WithWorkers(64))
	job := randomJob(3, 5, 50, 1)
	res, _ := par.Execute(job)
	if len(res.Neighbors) == 0 {
		t.Fatal("no neighbors selected")
	}
}
