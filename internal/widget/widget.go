// Package widget implements the HyRec client (Section 3.2): the piece of
// code that runs "in the browser", executing personalization jobs — KNN
// selection (Algorithm 1) and item recommendation (Algorithm 2) — and
// posting results back. The widget keeps no local state between jobs.
//
// The paper measures a JavaScript widget on a laptop (Firefox) and an
// Android smartphone; here the identical algorithms run natively and a
// Device model translates measured laptop-class times into other device
// classes and CPU-load conditions (see DESIGN.md §2, substitution 2).
package widget

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/topk"
	"hyrec/internal/wire"
)

// Device models the class of machine the widget runs on. SpeedFactor
// scales compute time relative to the reference laptop (1.0); Load is the
// fraction of CPU consumed by other applications (the paper's stress/antutu
// experiments), which inflates effective latency by 1/(1-Load).
type Device struct {
	Name        string
	SpeedFactor float64
	Load        float64
}

// Laptop is the reference device (Dell Latitude E4310 in the paper).
func Laptop() Device { return Device{Name: "laptop", SpeedFactor: 1} }

// Smartphone models the Wiko Cink King: calibrated from Figure 13, where
// smartphone widget times are roughly 6–8× the laptop's.
func Smartphone() Device { return Device{Name: "smartphone", SpeedFactor: 7} }

// WithLoad returns a copy of d under the given background CPU load
// (0 ≤ load < 1).
func (d Device) WithLoad(load float64) Device {
	d.Load = load
	return d
}

// Scale converts a measured reference duration into this device's
// simulated duration.
func (d Device) Scale(measured time.Duration) time.Duration {
	f := d.SpeedFactor
	if f <= 0 {
		f = 1
	}
	load := d.Load
	if load < 0 {
		load = 0
	}
	if load >= 0.95 {
		load = 0.95 // saturate rather than divide by ~0
	}
	return time.Duration(float64(measured) * f / (1 - load))
}

// Timing reports where one job execution spent its time. Measured on the
// reference machine; Total is scaled to the widget's device.
type Timing struct {
	Decompress time.Duration
	Decode     time.Duration
	KNN        time.Duration
	Recommend  time.Duration
	// Total is the device-scaled end-to-end widget time; the quantity
	// Figures 12 and 13 plot.
	Total time.Duration
}

// Widget executes personalization jobs. The zero value is not usable;
// construct with New. A Widget is stateless across jobs (by design, so a
// user can roam across devices) and safe for concurrent use.
type Widget struct {
	metric core.Similarity
	device Device
	// workers > 1 enables the web-worker parallel execution mode
	// (see WithWorkers in parallel.go).
	workers int
}

// Option customises a Widget (functional options per the style guide).
type Option func(*Widget)

// WithSimilarity replaces the similarity metric (Table 1:
// setSimilarity()).
func WithSimilarity(m core.Similarity) Option {
	return func(w *Widget) { w.metric = m }
}

// WithDevice sets the device model.
func WithDevice(d Device) Option {
	return func(w *Widget) { w.device = d }
}

// New returns a widget with cosine similarity on the reference laptop,
// modified by opts.
func New(opts ...Option) *Widget {
	w := &Widget{metric: core.Cosine{}, device: Laptop()}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Device returns the widget's device model.
func (w *Widget) Device() Device { return w.device }

// ExecutePayload inflates and decodes a gzip job payload, then executes it.
func (w *Widget) ExecutePayload(gz []byte) (*wire.Result, Timing, error) {
	var timing Timing

	start := time.Now()
	raw, err := wire.Decompress(gz)
	if err != nil {
		return nil, timing, fmt.Errorf("widget: inflate job: %w", err)
	}
	timing.Decompress = time.Since(start)

	start = time.Now()
	job, err := wire.DecodeJob(raw)
	if err != nil {
		return nil, timing, fmt.Errorf("widget: parse job: %w", err)
	}
	timing.Decode = time.Since(start)

	res, execTiming := w.Execute(job)
	timing.KNN = execTiming.KNN
	timing.Recommend = execTiming.Recommend
	timing.Total = w.device.Scale(timing.Decompress + timing.Decode + timing.KNN + timing.Recommend)
	return res, timing, nil
}

// execScratch is the pooled per-execution working set: the decoded
// candidate profiles, the KNN neighborhood, Algorithm 2's tally map, a
// rec buffer and a re-armable top-k collector. The widget stays stateless
// across jobs — the pool only recycles storage, never results.
type execScratch struct {
	cands []core.Profile
	hood  []core.Neighbor
	recs  []core.ItemID
	col   *topk.Collector
	pop   map[core.ItemID]int
}

var execPool = sync.Pool{New: func() any {
	return &execScratch{col: topk.New(8), pop: make(map[core.ItemID]int, 64)}
}}

func releaseExecScratch(sc *execScratch) {
	// Zero the profile slots so pooled scratch does not pin decoded
	// profiles (and their packed forms) between jobs.
	for i := range sc.cands {
		sc.cands[i] = core.Profile{}
	}
	sc.cands = sc.cands[:0]
	sc.hood = sc.hood[:0]
	sc.recs = sc.recs[:0]
	execPool.Put(sc)
}

// Execute runs one personalization job: γ then α over the candidate set,
// entirely in pseudonym space. It returns the result to POST back and the
// measured timings.
func (w *Widget) Execute(job *wire.Job) (*wire.Result, Timing) {
	var timing Timing

	sc := execPool.Get().(*execScratch)
	defer releaseExecScratch(sc)

	own := wire.MsgToProfile(job.Profile)
	candidates := slices.Grow(sc.cands[:0], len(job.Candidates))
	for _, msg := range job.Candidates {
		candidates = append(candidates, wire.MsgToProfile(msg))
	}
	sc.cands = candidates

	start := time.Now()
	neighbors := w.selectKNN(own, candidates, job.K, sc)
	timing.KNN = time.Since(start)

	start = time.Now()
	recs := w.recommend(own, candidates, job.R, sc)
	timing.Recommend = time.Since(start)

	res := &wire.Result{
		UID:   job.UID,
		Epoch: job.Epoch,
		// Echo the lease so the scheduler retires it on fold-in.
		Lease:           job.Lease,
		Neighbors:       make([]uint32, len(neighbors)),
		Recommendations: make([]uint32, len(recs)),
	}
	for i, n := range neighbors {
		res.Neighbors[i] = uint32(n.User)
	}
	for i, item := range recs {
		res.Recommendations[i] = uint32(item)
	}
	timing.Total = w.device.Scale(timing.KNN + timing.Recommend)
	return res, timing
}
