package widget

import (
	"sync"

	"hyrec/internal/core"
	"hyrec/internal/topk"
)

// minParallelCandidates is the candidate-set size below which the parallel
// path is not worth the goroutine fan-out.
const minParallelCandidates = 16

// WithWorkers enables the HTML5-web-worker execution mode the paper's
// conclusion anticipates ("recent technologies like support for JavaScript
// threads in HTML5 may further improve the performance of HyRec"): KNN
// similarity scoring and recommendation tallying are partitioned across n
// parallel workers. Results are bit-identical to the sequential path (the
// per-chunk top-k merge preserves Algorithm 1's deterministic tie-breaks),
// which TestParallelMatchesSequential verifies. n ≤ 1 keeps the
// single-threaded widget.
func WithWorkers(n int) Option {
	return func(w *Widget) { w.workers = n }
}

// Workers returns the configured worker count (1 = sequential).
func (w *Widget) Workers() int {
	if w.workers <= 1 {
		return 1
	}
	return w.workers
}

// selectKNN runs Algorithm 1 sequentially or across workers. The
// sequential path writes into the pooled scratch (allocation-free); the
// parallel fan-out keeps its own per-chunk storage.
func (w *Widget) selectKNN(own core.Profile, candidates []core.Profile, k int, sc *execScratch) []core.Neighbor {
	if w.workers <= 1 || len(candidates) < minParallelCandidates || k <= 0 {
		if sc != nil && k > 0 {
			sc.hood = core.SelectKNNInto(own, candidates, k, w.metric, sc.col, sc.hood)
			return sc.hood
		}
		return core.SelectKNN(own, candidates, k, w.metric)
	}
	chunks := splitProfiles(candidates, w.workers)
	partial := make([][]core.Neighbor, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, chunk []core.Profile) {
			defer wg.Done()
			partial[i] = core.SelectKNN(own, chunk, k, w.metric)
		}(i, chunk)
	}
	wg.Wait()

	// Merge: any entry outside its chunk's top-k is dominated by k entries
	// from that same chunk, so the union of chunk top-ks contains the
	// global top-k.
	col := topk.New(k)
	for _, ns := range partial {
		for _, n := range ns {
			col.Offer(uint32(n.User), n.Sim)
		}
	}
	entries := col.DrainSorted(nil)
	out := make([]core.Neighbor, len(entries))
	for i, e := range entries {
		out[i] = core.Neighbor{User: core.UserID(e.ID), Sim: e.Score}
	}
	return out
}

// recommend runs Algorithm 2 sequentially or across workers.
func (w *Widget) recommend(own core.Profile, candidates []core.Profile, r int, sc *execScratch) []core.ItemID {
	if w.workers <= 1 || len(candidates) < minParallelCandidates || r <= 0 {
		if sc != nil && r > 0 {
			sc.recs = core.RecommendInto(own, candidates, r, sc.col, sc.pop, sc.recs)
			return sc.recs
		}
		return core.Recommend(own, candidates, r)
	}
	chunks := splitProfiles(candidates, w.workers)
	partial := make([]map[core.ItemID]int, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, chunk []core.Profile) {
			defer wg.Done()
			partial[i] = core.CountUnseen(own, chunk)
		}(i, chunk)
	}
	wg.Wait()

	merged := partial[0]
	for _, m := range partial[1:] {
		for item, count := range m {
			merged[item] += count
		}
	}
	return core.TopItems(merged, r)
}

// splitProfiles partitions profiles into at most n contiguous chunks of
// near-equal size (never returning empty chunks).
func splitProfiles(profiles []core.Profile, n int) [][]core.Profile {
	if n > len(profiles) {
		n = len(profiles)
	}
	chunks := make([][]core.Profile, 0, n)
	chunkLen := (len(profiles) + n - 1) / n
	for lo := 0; lo < len(profiles); lo += chunkLen {
		hi := lo + chunkLen
		if hi > len(profiles) {
			hi = len(profiles)
		}
		chunks = append(chunks, profiles[lo:hi])
	}
	return chunks
}
