package widget

import (
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/wire"
)

func jobFixture() *wire.Job {
	// User 1 liked items {1,2}; candidates: user 2 identical, user 3
	// disjoint, user 4 partially overlapping with a novel item 5.
	return &wire.Job{
		UID: 1, Epoch: 0, K: 2, R: 3,
		Profile: wire.ProfileMsg{ID: 1, Liked: []uint32{1, 2}},
		Candidates: []wire.ProfileMsg{
			{ID: 2, Liked: []uint32{1, 2}},
			{ID: 3, Liked: []uint32{7, 8}},
			{ID: 4, Liked: []uint32{2, 5}},
		},
	}
}

func TestExecuteSelectsNeighborsAndRecs(t *testing.T) {
	w := New()
	res, timing := w.Execute(jobFixture())
	if res.UID != 1 || res.Epoch != 0 {
		t.Fatalf("result header: %+v", res)
	}
	if len(res.Neighbors) != 2 || res.Neighbors[0] != 2 || res.Neighbors[1] != 4 {
		t.Fatalf("neighbors = %v, want [2 4]", res.Neighbors)
	}
	// Unseen items: 7,8 (from u3), 5 (from u4) — each popularity 1; top-3
	// by ascending-ID tie-break = [5 7 8].
	if len(res.Recommendations) != 3 || res.Recommendations[0] != 5 {
		t.Fatalf("recs = %v", res.Recommendations)
	}
	if timing.Total <= 0 {
		t.Fatal("no timing recorded")
	}
}

func TestExecutePayloadRoundTrip(t *testing.T) {
	raw, err := wire.EncodeJob(jobFixture())
	if err != nil {
		t.Fatal(err)
	}
	gz, err := wire.Compress(raw, wire.GzipBestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	w := New()
	res, timing, err := w.ExecutePayload(gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 2 {
		t.Fatalf("neighbors = %v", res.Neighbors)
	}
	if timing.Decompress <= 0 || timing.Decode <= 0 {
		t.Fatalf("missing phases: %+v", timing)
	}
}

func TestExecutePayloadErrors(t *testing.T) {
	w := New()
	if _, _, err := w.ExecutePayload([]byte("junk")); err == nil {
		t.Fatal("accepted non-gzip payload")
	}
	gz, err := wire.Compress([]byte("{"), wire.GzipBestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.ExecutePayload(gz); err == nil {
		t.Fatal("accepted bad JSON payload")
	}
}

func TestWithSimilarityOption(t *testing.T) {
	w := New(WithSimilarity(core.Overlap{}))
	res, _ := w.Execute(jobFixture())
	// Overlap ranks u2 (2 common) over u4 (1 common) the same as cosine
	// here; the test just asserts the option is wired through without
	// changing correctness.
	if len(res.Neighbors) != 2 || res.Neighbors[0] != 2 {
		t.Fatalf("neighbors = %v", res.Neighbors)
	}
}

func TestDeviceScale(t *testing.T) {
	laptop := Laptop()
	if got := laptop.Scale(time.Millisecond); got != time.Millisecond {
		t.Fatalf("laptop scale = %v", got)
	}
	phone := Smartphone()
	if got := phone.Scale(time.Millisecond); got != 7*time.Millisecond {
		t.Fatalf("smartphone scale = %v", got)
	}
	loaded := laptop.WithLoad(0.5)
	if got := loaded.Scale(time.Millisecond); got != 2*time.Millisecond {
		t.Fatalf("loaded scale = %v", got)
	}
	// Load saturates rather than exploding: 1ms / (1-0.95) = 20ms ± ε.
	maxed := laptop.WithLoad(1.0)
	if got := maxed.Scale(time.Millisecond); got < 19*time.Millisecond || got > 21*time.Millisecond {
		t.Fatalf("saturated scale = %v", got)
	}
	// Zero/negative SpeedFactor treated as 1.
	weird := Device{Name: "x", SpeedFactor: 0}
	if got := weird.Scale(time.Millisecond); got != time.Millisecond {
		t.Fatalf("zero-speed scale = %v", got)
	}
	neg := laptop.WithLoad(-3)
	if got := neg.Scale(time.Millisecond); got != time.Millisecond {
		t.Fatalf("negative load scale = %v", got)
	}
}

func TestDeviceScalingAppliedToTiming(t *testing.T) {
	fast := New(WithDevice(Laptop()))
	slow := New(WithDevice(Smartphone()))
	job := jobFixture()
	_, ft := fast.Execute(job)
	_, st := slow.Execute(job)
	// The smartphone's scaled total must exceed the laptop's on the same
	// job (both run the same machine; scaling is deterministic 7×).
	if st.Total <= ft.Total {
		t.Fatalf("smartphone total %v not > laptop %v", st.Total, ft.Total)
	}
}

func TestWidgetStateless(t *testing.T) {
	w := New()
	job := jobFixture()
	r1, _ := w.Execute(job)
	r2, _ := w.Execute(job)
	if len(r1.Neighbors) != len(r2.Neighbors) {
		t.Fatal("widget kept state between executions")
	}
	for i := range r1.Neighbors {
		if r1.Neighbors[i] != r2.Neighbors[i] {
			t.Fatal("non-deterministic execution")
		}
	}
}

func BenchmarkExecute(b *testing.B) {
	job := jobFixture()
	w := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Execute(job)
	}
}
