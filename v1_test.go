package hyrec

// Wire-protocol v1 and identification edge cases, exercised through both
// deployment shapes (single engine and partitioned cluster) over the
// shared mux — the contract the typed client (hyrec/client) relies on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// frontend bundles one deployment shape for the table-driven protocol
// tests: the Service under test, its HTTP handler, and direct state
// accessors for verification.
type frontend struct {
	name   string
	svc    Service
	ts     *httptest.Server
	known  func(UserID) bool
	rotate func()
}

func newFrontends(t *testing.T) []frontend {
	t.Helper()
	cfg := DefaultConfig()
	cfg.K = 3

	eng := NewEngine(cfg)
	es := NewServiceServer(eng, 0)
	ets := httptest.NewServer(es.Handler())
	t.Cleanup(func() { ets.Close(); es.Close() })

	clus := NewCluster(cfg, 3)
	cs := NewServiceServer(clus, 0)
	cts := httptest.NewServer(cs.Handler())
	t.Cleanup(func() { cts.Close(); cs.Close() })

	return []frontend{
		{"engine", eng, ets, eng.KnownUser, eng.RotateAnonymizer},
		{"cluster", clus, cts, clus.KnownUser, clus.RotateAnonymizers},
	}
}

// decodeEnvelope fails the test unless the response is a well-formed v1
// error envelope with the expected status and code.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	var env wire.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", env.Error.Code, wantCode, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Fatal("error envelope has empty message")
	}
}

// TestV1FullLoop drives the complete widget protocol over /v1 on both
// front-ends: batch rate → job → widget execution → result → recs and
// neighbors.
func TestV1FullLoop(t *testing.T) {
	for _, fe := range newFrontends(t) {
		t.Run(fe.name, func(t *testing.T) {
			// Batch-rate a small community.
			var req wire.RateRequest
			for u := uint32(1); u <= 12; u++ {
				req.Ratings = append(req.Ratings,
					wire.RatingMsg{UID: u, Item: u % 3, Liked: true},
					wire.RatingMsg{UID: u, Item: 100, Liked: true})
			}
			body, _ := json.Marshal(&req)
			resp, err := http.Post(fe.ts.URL+"/v1/rate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var rr wire.RateResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || rr.Accepted != len(req.Ratings) {
				t.Fatalf("rate: status %d accepted %d, want 200/%d", resp.StatusCode, rr.Accepted, len(req.Ratings))
			}

			w := widget.New()
			gotRecs := false
			for round := 0; round < 3; round++ {
				for u := uint32(1); u <= 12; u++ {
					jresp, err := http.Get(fmt.Sprintf("%s/v1/job?uid=%d", fe.ts.URL, u))
					if err != nil {
						t.Fatal(err)
					}
					raw, err := io.ReadAll(jresp.Body)
					jresp.Body.Close()
					if jresp.StatusCode != http.StatusOK {
						t.Fatalf("job uid=%d: status %d (%s)", u, jresp.StatusCode, raw)
					}
					if err != nil {
						t.Fatal(err)
					}
					job, err := wire.DecodeJob(raw)
					if err != nil {
						t.Fatalf("job uid=%d: %v", u, err)
					}
					res, _ := w.Execute(job)
					rbody, _ := json.Marshal(res)
					presp, err := http.Post(fe.ts.URL+"/v1/result", "application/json", bytes.NewReader(rbody))
					if err != nil {
						t.Fatal(err)
					}
					var recs wire.RecsResponse
					if err := json.NewDecoder(presp.Body).Decode(&recs); err != nil {
						t.Fatal(err)
					}
					presp.Body.Close()
					if presp.StatusCode != http.StatusOK {
						t.Fatalf("result uid=%d: status %d", u, presp.StatusCode)
					}
					if len(recs.Recs) > 0 {
						gotRecs = true
					}
				}
			}
			if !gotRecs {
				t.Fatal("no recommendations through /v1 after three rounds")
			}

			// /v1/recs and /v1/neighbors agree with the applied state.
			sawRecs, sawHood := false, false
			for u := uint32(1); u <= 12; u++ {
				rresp, err := http.Get(fmt.Sprintf("%s/v1/recs?uid=%d", fe.ts.URL, u))
				if err != nil {
					t.Fatal(err)
				}
				var recs wire.RecsResponse
				if err := json.NewDecoder(rresp.Body).Decode(&recs); err != nil {
					t.Fatal(err)
				}
				rresp.Body.Close()
				if len(recs.Recs) > 0 {
					sawRecs = true
				}
				nresp, err := http.Get(fmt.Sprintf("%s/v1/neighbors?uid=%d", fe.ts.URL, u))
				if err != nil {
					t.Fatal(err)
				}
				var hood wire.NeighborsResponse
				if err := json.NewDecoder(nresp.Body).Decode(&hood); err != nil {
					t.Fatal(err)
				}
				nresp.Body.Close()
				if len(hood.Neighbors) > 0 {
					sawHood = true
				}
			}
			if !sawRecs || !sawHood {
				t.Fatalf("retained state missing: recs=%v neighbors=%v", sawRecs, sawHood)
			}
		})
	}
}

// TestExplicitUIDBeatsCookieBothFrontends pins the identification
// precedence rule on every front-end: an explicit ?uid always wins over
// a conflicting cookie, and the cookie's user is left untouched.
func TestExplicitUIDBeatsCookieBothFrontends(t *testing.T) {
	for _, fe := range newFrontends(t) {
		t.Run(fe.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodPost, fe.ts.URL+"/rate?uid=77&item=9", nil)
			req.AddCookie(&http.Cookie{Name: "hyrec_uid", Value: "88"})
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				t.Fatalf("/rate: status %d", resp.StatusCode)
			}
			if !fe.known(77) {
				t.Fatal("explicit uid 77 not registered")
			}
			if fe.known(88) {
				t.Fatal("cookie user 88 registered despite explicit uid")
			}
		})
	}
}

// TestV1MalformedBatchBodies verifies malformed /v1/rate bodies produce
// bad_request envelopes on both front-ends.
func TestV1MalformedBatchBodies(t *testing.T) {
	for _, fe := range newFrontends(t) {
		t.Run(fe.name, func(t *testing.T) {
			for _, body := range []string{"not json", `{"ratings": 5}`, `[1,2,3]`} {
				resp, err := http.Post(fe.ts.URL+"/v1/rate", "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				decodeEnvelope(t, resp, http.StatusBadRequest, wire.CodeBadRequest)
			}
		})
	}
}

// TestV1OversizedBatches verifies both protocol limits: too many ratings
// in one batch, and a body exceeding the byte cap — each rejected with a
// too_large envelope rather than truncated.
func TestV1OversizedBatches(t *testing.T) {
	for _, fe := range newFrontends(t) {
		t.Run(fe.name, func(t *testing.T) {
			// One rating over the batch limit.
			var req wire.RateRequest
			for i := 0; i <= wire.MaxBatchRatings; i++ {
				req.Ratings = append(req.Ratings, wire.RatingMsg{UID: uint32(i + 1), Item: 1, Liked: true})
			}
			body, _ := json.Marshal(&req)
			resp, err := http.Post(fe.ts.URL+"/v1/rate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusRequestEntityTooLarge, wire.CodeTooLarge)

			// A body over the byte cap (valid JSON prefix so the decoder
			// keeps reading until the reader cuts it off).
			var huge bytes.Buffer
			huge.WriteString(`{"ratings":[`)
			for huge.Len() <= wire.MaxBodyBytes {
				huge.WriteString(`{"uid":1,"item":1,"liked":true},`)
			}
			huge.WriteString(`{"uid":1,"item":1,"liked":true}]}`)
			resp, err = http.Post(fe.ts.URL+"/v1/rate", "application/json", bytes.NewReader(huge.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusRequestEntityTooLarge, wire.CodeTooLarge)
		})
	}
}

// TestV1ErrorEnvelopeShapes verifies the stable machine codes: wrong
// method, missing identification, and a stale-epoch result — on both
// front-ends (a cluster-unroutable result maps to the same stale_epoch
// code the single engine reports).
func TestV1ErrorEnvelopeShapes(t *testing.T) {
	for _, fe := range newFrontends(t) {
		t.Run(fe.name, func(t *testing.T) {
			// Wrong method.
			resp, err := http.Get(fe.ts.URL + "/v1/rate")
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusMethodNotAllowed, wire.CodeMethodNotAllowed)

			// Missing identification.
			resp, err = http.Get(fe.ts.URL + "/v1/recs")
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusBadRequest, wire.CodeBadRequest)

			// Stale epoch: mint a job, evict its epoch, post the result.
			resp, err = http.Post(fe.ts.URL+"/v1/rate", "application/json",
				strings.NewReader(`{"ratings":[{"uid":5,"item":1,"liked":true}]}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			jresp, err := http.Get(fe.ts.URL + "/v1/job?uid=5")
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(jresp.Body)
			jresp.Body.Close()
			job, err := wire.DecodeJob(raw)
			if err != nil {
				t.Fatal(err)
			}
			res, _ := widget.New().Execute(job)
			fe.rotate()
			fe.rotate()
			rbody, _ := json.Marshal(res)
			resp, err = http.Post(fe.ts.URL+"/v1/result", "application/json", bytes.NewReader(rbody))
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusGone, wire.CodeStaleEpoch)
		})
	}
}

// TestV1JobGzipNegotiation verifies /v1/job compresses only when the
// client negotiates it, unlike the always-gzip legacy /online.
func TestV1JobGzipNegotiation(t *testing.T) {
	for _, fe := range newFrontends(t) {
		t.Run(fe.name, func(t *testing.T) {
			raw := &http.Client{Transport: &http.Transport{DisableCompression: true}}

			// Without Accept-Encoding: plain JSON.
			req, _ := http.NewRequest(http.MethodGet, fe.ts.URL+"/v1/job?uid=9", nil)
			resp, err := raw.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if enc := resp.Header.Get("Content-Encoding"); enc != "" {
				t.Fatalf("unnegotiated Content-Encoding = %q", enc)
			}
			if _, err := wire.DecodeJob(body); err != nil {
				t.Fatalf("plain body is not a job: %v", err)
			}

			// With Accept-Encoding: gzip bytes on the wire.
			req, _ = http.NewRequest(http.MethodGet, fe.ts.URL+"/v1/job?uid=9", nil)
			req.Header.Set("Accept-Encoding", "gzip")
			resp, err = raw.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			gz, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
				t.Fatalf("negotiated Content-Encoding = %q, want gzip", enc)
			}
			plain, err := wire.Decompress(gz)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wire.DecodeJob(plain); err != nil {
				t.Fatalf("gzip body is not a job: %v", err)
			}
		})
	}
}

// TestV1JobMintsCookie verifies first-contact minting works identically
// on /v1/job and the legacy /online, on both front-ends.
func TestV1JobMintsCookie(t *testing.T) {
	for _, fe := range newFrontends(t) {
		t.Run(fe.name, func(t *testing.T) {
			resp, err := http.Get(fe.ts.URL + "/v1/job")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("anonymous /v1/job: status %d", resp.StatusCode)
			}
			minted := ""
			for _, ck := range resp.Cookies() {
				if ck.Name == "hyrec_uid" {
					minted = ck.Value
				}
			}
			if minted == "" {
				t.Fatal("no identification cookie minted on /v1/job first contact")
			}
		})
	}
}
