package hyrec

import (
	"context"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
	"hyrec/internal/server"
	"hyrec/internal/widget"
)

// System runs the complete HyRec loop — server orchestration plus a
// simulated browser widget per request — behind the replay.System
// interface, so traces drive HyRec and the baselines identically
// (Sections 5.2–5.3 methodology).
//
// The loop is lease-aware with no API change: when cfg enables the
// asynchronous scheduler (Config.LeaseTTL / Config.FallbackWorkers),
// every job the cycle pulls carries a lease, the widget echoes it, and
// the fold-in retires it — the same contract remote deployments get.
// With the default configuration the cycle is the paper's synchronous
// flow, byte-for-byte.
type System struct {
	engine *server.Engine
	widget *widget.Widget
	// wireFidelity routes every job through JSON + gzip exactly as on the
	// network (needed for bandwidth experiments); when false, jobs pass
	// in-memory, which replays large traces much faster.
	wireFidelity bool
	rotate       *rotateTimer
}

var _ replay.System = (*System)(nil)

// SystemOption customises a System.
type SystemOption func(*System)

// WithWireFidelity makes every personalization job cross a real
// JSON+gzip encode/decode boundary, so bandwidth meters see exactly what
// a deployment would transfer.
func WithWireFidelity() SystemOption {
	return func(s *System) { s.wireFidelity = true }
}

// WithWidget replaces the default widget (e.g. a smartphone-device one).
func WithWidget(w *Widget) SystemOption {
	return func(s *System) { s.widget = w }
}

// WithAnonymizerRotation rotates the anonymous mapping every period of
// virtual time during a replay.
func WithAnonymizerRotation(period time.Duration) SystemOption {
	return func(s *System) { s.rotate = &rotateTimer{period: period, next: period} }
}

type rotateTimer struct {
	period time.Duration
	next   time.Duration
}

// NewSystem builds an in-process HyRec deployment.
func NewSystem(cfg Config, opts ...SystemOption) *System {
	s := &System{
		engine: server.NewEngine(cfg),
		widget: widget.New(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Engine exposes the underlying server engine (meters, tables).
func (s *System) Engine() *Engine { return s.engine }

// Close stops the engine's background work (the scheduler's sweeper and
// fallback pool; a no-op for synchronous configurations). Safe to call
// multiple times.
func (s *System) Close() error { return s.engine.Close() }

// Name implements replay.System.
func (s *System) Name() string { return "hyrec" }

// Rate implements replay.System: a rating is a client request — the
// profile updates and a full personalization job round-trips through the
// widget, exactly as §5.2 replays the traces.
func (s *System) Rate(_ time.Duration, r core.Rating) {
	s.engine.Rate(context.Background(), r.User, r.Item, r.Liked)
	s.cycle(r.User)
}

// Recommend implements replay.System: a recommendation request also runs
// one KNN iteration (HyRec is an online protocol).
func (s *System) Recommend(_ time.Duration, u core.UserID, n int) []core.ItemID {
	recs := s.cycle(u)
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// Neighbors implements replay.System.
func (s *System) Neighbors(u core.UserID) []core.UserID {
	hood, _ := s.engine.Neighbors(context.Background(), u)
	return hood
}

// Tick implements replay.System.
func (s *System) Tick(t time.Duration) {
	if s.rotate == nil || s.rotate.period <= 0 {
		return
	}
	for s.rotate.next <= t {
		s.engine.RotateAnonymizer()
		s.rotate.next += s.rotate.period
	}
}

// cycle performs one full client-server interaction for u and returns the
// recommendations the widget computed.
func (s *System) cycle(u core.UserID) []core.ItemID {
	ctx := context.Background()
	if s.wireFidelity {
		_, gz, err := s.engine.JobPayload(u)
		if err != nil {
			return nil
		}
		res, _, err := s.widget.ExecutePayload(gz)
		if err != nil {
			return nil
		}
		recs, err := s.engine.ApplyResult(ctx, res)
		if err != nil {
			return nil
		}
		return recs
	}
	job, err := s.engine.Job(ctx, u)
	if err != nil {
		return nil
	}
	res, _ := s.widget.Execute(job)
	recs, err := s.engine.ApplyResult(ctx, res)
	if err != nil {
		return nil
	}
	return recs
}

// ProfileSource adapts the engine's profile table for the metrics package.
func (s *System) ProfileSource() metrics.ProfileSource {
	return engineSource{engine: s.engine}
}

type engineSource struct {
	engine *server.Engine
}

var _ metrics.ProfileSource = engineSource{}

// Profile implements metrics.ProfileSource.
func (e engineSource) Profile(u core.UserID) core.Profile { return e.engine.Profiles().Get(u) }

// Users implements metrics.ProfileSource.
func (e engineSource) Users() []core.UserID { return e.engine.Profiles().Users() }
