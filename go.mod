module hyrec

go 1.22
