package hyrec

import (
	"context"
	"testing"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
	"hyrec/internal/replay"
)

// tctx is the context used by tests exercising the context-aware
// Service methods.
var tctx = context.Background()

func TestPublicAPIQuickstart(t *testing.T) {
	eng := NewEngine(DefaultConfig())
	w := NewWidget()

	eng.Rate(tctx, 42, 7, true)
	eng.Rate(tctx, 43, 7, true)
	eng.Rate(tctx, 43, 8, true)

	job, err := eng.Job(tctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := w.Execute(job)
	recs, err := eng.ApplyResult(tctx, res)
	if err != nil {
		t.Fatal(err)
	}
	// User 43 shares item 7 and likes 8 → 8 must be recommended to 42.
	found := false
	for _, item := range recs {
		if item == 8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("recs = %v, want to contain 8", recs)
	}
	if hood, _ := eng.Neighbors(tctx, 42); len(hood) == 0 || hood[0] != 43 {
		t.Fatalf("neighbors = %v", hood)
	}
}

func TestWidgetOptionsViaFacade(t *testing.T) {
	w := NewWidget(WithSimilarity(Jaccard{}), WithDevice(Smartphone()))
	if w.Device().Name != "smartphone" {
		t.Fatal("device option lost")
	}
}

// TestSystemConvergesTowardIdeal is the Figure 3 claim in miniature: after
// replaying a community-structured trace, HyRec's KNN approximation must
// reach a large fraction of the ideal view similarity.
func TestSystemConvergesTowardIdeal(t *testing.T) {
	tr, err := dataset.Generate(dataset.Scaled(dataset.ML1Config(), 0.07))
	if err != nil {
		t.Fatal(err)
	}
	events := dataset.Binarize(tr)
	if len(events) > 6000 {
		events = events[:6000]
	}

	cfg := DefaultConfig()
	cfg.K = 10
	sys := NewSystem(cfg)
	replay.NewDriver(sys).Run(events)

	src := sys.ProfileSource()
	gotV := metrics.ViewSimilarity(src, sys.Neighbors, core.Cosine{})
	idealV := metrics.IdealViewSimilarity(src, cfg.K, core.Cosine{})
	if idealV == 0 {
		t.Fatal("degenerate workload: ideal view similarity is 0")
	}
	ratio := gotV / idealV
	t.Logf("view similarity: hyrec=%.4f ideal=%.4f ratio=%.2f", gotV, idealV, ratio)
	// The paper reports within 10–20%% of ideal on ML1; at this reduced
	// scale and activity we demand at least 60%%.
	if ratio < 0.6 {
		t.Fatalf("HyRec converged to only %.0f%% of ideal", 100*ratio)
	}
}

func TestSystemWireFidelityMetersTraffic(t *testing.T) {
	sys := NewSystem(DefaultConfig(), WithWireFidelity())
	for u := core.UserID(1); u <= 10; u++ {
		sys.Rate(0, core.Rating{User: u, Item: core.ItemID(u % 4), Liked: true})
	}
	m := sys.Engine().Meter()
	if m.GzipBytes() == 0 || m.JSONBytes() == 0 {
		t.Fatal("wire fidelity did not meter traffic")
	}
	if m.GzipBytes() >= m.JSONBytes() {
		t.Fatalf("gzip (%d) not smaller than json (%d)", m.GzipBytes(), m.JSONBytes())
	}
}

func TestSystemFastPathDoesNotMeter(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	sys.Rate(0, core.Rating{User: 1, Item: 1, Liked: true})
	if sys.Engine().Meter().GzipBytes() != 0 {
		t.Fatal("fast path unexpectedly metered gzip traffic")
	}
}

func TestSystemAnonymizerRotation(t *testing.T) {
	sys := NewSystem(DefaultConfig(), WithAnonymizerRotation(time.Hour))
	sys.Rate(30*time.Minute, core.Rating{User: 1, Item: 1, Liked: true})
	sys.Tick(30 * time.Minute)
	sys.Tick(5 * time.Hour) // several boundaries at once
	// The system must keep functioning across rotations.
	sys.Rate(5*time.Hour, core.Rating{User: 2, Item: 1, Liked: true})
	if recs := sys.Recommend(5*time.Hour, 1, 3); recs == nil {
		// may legitimately be empty; just must not panic
		_ = recs
	}
	if sys.Name() != "hyrec" {
		t.Fatal("name")
	}
}

func TestSystemRecommendBoundsN(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	for u := core.UserID(1); u <= 6; u++ {
		sys.Rate(0, core.Rating{User: u, Item: 1, Liked: true})
		sys.Rate(0, core.Rating{User: u, Item: core.ItemID(10 + u), Liked: true})
	}
	recs := sys.Recommend(0, 1, 2)
	if len(recs) > 2 {
		t.Fatalf("asked for 2, got %d", len(recs))
	}
}

func TestHandlerFacade(t *testing.T) {
	eng := NewEngine(DefaultConfig())
	h := Handler(eng, 0)
	if h == nil {
		t.Fatal("nil handler")
	}
}
