package hyrec

import (
	"net/http"
	"time"

	"hyrec/internal/cluster"
	"hyrec/internal/wire"
)

// Cluster is a user-partitioned cluster of HyRec engines behind a single
// front-end: each partition is a full Engine (own tables, anonymiser and
// sampler RNG), users are routed to partitions by a stable hash of their
// ID, and every partition's candidate sets are topped up with random
// users from sibling partitions so the KNN graph converges toward the
// single-engine baseline instead of fragmenting into per-partition
// neighbourhoods. See internal/cluster for the full model.
type Cluster = cluster.Cluster

// ClusterHTTPServer exposes a Cluster over the paper's web API, fanning
// requests out to the owning partition.
type ClusterHTTPServer = cluster.HTTPServer

// NewCluster builds a cluster of nParts engines sharing cfg; partition i
// runs with a seed derived from cfg.Seed. A 1-partition cluster behaves
// identically to a plain Engine with the same configuration. The
// partition count is elastic: Cluster.Scale reshapes it at runtime,
// streaming only the moved users' state between engines (see
// internal/cluster's migration coordinator).
func NewCluster(cfg Config, nParts int) *Cluster { return cluster.New(cfg, nParts) }

// Topology describes a deployment's current shape (partition count,
// consistent-hash ring parameter, live-migration status) — served on
// GET /v1/topology and returned by Cluster.Topology.
type Topology = wire.Topology

// NewClusterHTTPServer wraps a cluster with the fan-out web API;
// rotateEvery > 0 rotates every partition's anonymous mapping
// periodically in the background (call Start).
func NewClusterHTTPServer(c *Cluster, rotateEvery time.Duration) *ClusterHTTPServer {
	return cluster.NewHTTPServer(c, rotateEvery)
}

// ClusterHandler returns a ready-to-serve http.Handler fanning out over
// c's partitions, with anonymiser rotation every rotateEvery (0
// disables): the cluster analogue of Handler.
func ClusterHandler(c *Cluster, rotateEvery time.Duration) http.Handler {
	s := cluster.NewHTTPServer(c, rotateEvery)
	s.Start()
	return s.Handler()
}
