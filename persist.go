package hyrec

import "hyrec/internal/persist"

// Durable state (see internal/persist): checksummed snapshots of the
// server's Profile and KNN tables, so converged neighbourhoods survive
// restarts. cmd/hyrec-server wires these behind its -snapshot flag.

type (
	// Snapshot is a point-in-time copy of an engine's global tables.
	Snapshot = persist.Snapshot
	// SnapshotSaver periodically saves engine snapshots in the background.
	SnapshotSaver = persist.Saver
)

// CaptureSnapshot copies the engine's tables into a snapshot.
func CaptureSnapshot(e *Engine) *Snapshot { return persist.Capture(e) }

// RestoreSnapshot loads a snapshot into the engine (snapshot users replace
// existing entries; others are untouched).
func RestoreSnapshot(e *Engine, s *Snapshot) error { return persist.Restore(e, s) }

// SaveSnapshot atomically writes a snapshot file (temp file + rename; a
// crash mid-save never destroys the previous snapshot).
func SaveSnapshot(path string, s *Snapshot) error { return persist.Save(path, s) }

// LoadSnapshot reads and verifies a snapshot file, failing with
// persist.ErrCorrupt on truncation or bit rot rather than restoring
// garbage.
func LoadSnapshot(path string) (*Snapshot, error) { return persist.Load(path) }
