// Package hyrec is a from-scratch Go implementation of HyRec — the hybrid
// user-based collaborative-filtering recommender of Boutet, Frey,
// Guerraoui, Kermarrec and Patra (Middleware 2014) — together with every
// substrate and baseline its evaluation depends on.
//
// HyRec splits recommendation work between a lightweight server and the
// users' browsers: the server maintains the global profile and KNN tables
// and samples candidate sets; each client executes its own KNN selection
// and item recommendation on the sampled profiles and posts the refined
// neighbourhood back. The iterative feedback loop converges close to the
// exact KNN graph at a fraction of a centralized system's cost.
//
// # Quick start
//
//	ctx := context.Background()
//	eng := hyrec.NewEngine(hyrec.DefaultConfig())
//	w := hyrec.NewWidget()
//
//	eng.Rate(ctx, 42, 7, true)             // user 42 likes item 7
//	job, _ := eng.Job(ctx, 42)             // server builds a personalization job
//	res, _ := w.Execute(job)               // "browser" runs KNN + recommendation
//	recs, _ := eng.ApplyResult(ctx, res)   // server folds the result back
//
// Every front-end — the single-machine *Engine, the partitioned
// *Cluster, and the typed HTTP client in package hyrec/client —
// implements the same Service interface, so replay harnesses, load
// generators and applications are written once against Service and run
// unchanged in-process or over the wire.
//
// For a network deployment, see NewHTTPServer and cmd/hyrec-server; for
// trace-driven evaluation against the paper's baselines, see NewSystem and
// the internal/replay package; for the experiment harness regenerating the
// paper's tables and figures, see cmd/hyrec-bench.
package hyrec

import (
	"net/http"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/server"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// Re-exported identifier types.
type (
	// UserID identifies a user.
	UserID = core.UserID
	// ItemID identifies an item.
	ItemID = core.ItemID
	// Rating is one binary opinion.
	Rating = core.Rating
	// Profile is an immutable user profile.
	Profile = core.Profile
	// Neighbor pairs a user with a similarity score.
	Neighbor = core.Neighbor
	// Similarity scores two profiles.
	Similarity = core.Similarity
	// Cosine is the paper's default similarity metric.
	Cosine = core.Cosine
	// Jaccard is an alternative similarity metric.
	Jaccard = core.Jaccard
	// SignedCosine counts shared dislikes as agreement (the §2.1
	// non-binary extension).
	SignedCosine = core.SignedCosine
)

// Server-side types.
type (
	// Service is the single front-end API every deployment shape
	// implements: *Engine, *Cluster, and the typed HTTP client. See
	// internal/server for the capability interfaces transports probe.
	Service = server.Service
	// Config parametrises an Engine.
	Config = server.Config
	// Engine is the HyRec server (tables + sampler + orchestrator).
	Engine = server.Engine
	// Sampler is the candidate-set customization point of Table 1.
	Sampler = server.Sampler
	// RandomOnlySampler is the pure-exploration ablation sampler.
	RandomOnlySampler = server.RandomOnlySampler
	// NoRandomSampler is the pure-exploitation (two-hop-only) ablation
	// sampler.
	NoRandomSampler = server.NoRandomSampler
)

// Client-side types.
type (
	// Widget is the browser-side executor of personalization jobs.
	Widget = widget.Widget
	// Device models the client machine class.
	Device = widget.Device
	// WidgetOption customises a Widget.
	WidgetOption = widget.Option
)

// Wire-level types.
type (
	// Job is a personalization job.
	Job = wire.Job
	// Result is a widget's reply.
	Result = wire.Result
)

// Sentinel errors surfaced by Service implementations (and mapped onto
// v1 error-envelope codes by the HTTP layer and the typed client).
var (
	// ErrStaleEpoch: a result references an anonymiser epoch that is no
	// longer resolvable.
	ErrStaleEpoch = server.ErrStaleEpoch
	// ErrUnknownUser: the user was never seen by Rate or Job.
	ErrUnknownUser = server.ErrUnknownUser
	// ErrUnknownLease: an acked lease is not outstanding — already
	// completed, superseded, expired past its retry budget, or never
	// issued.
	ErrUnknownLease = server.ErrUnknownLease
	// ErrMoved: the user's state migrated to a different partition in a
	// completed topology change; clients refresh /v1/topology and retry.
	ErrMoved = server.ErrMoved
	// ErrNotPrimary: the request landed on a node that does not serve
	// the user's partition as primary (a replica mirror, or a stale node
	// map); clients refresh /v1/topology and retry against the primary
	// named in the envelope.
	ErrNotPrimary = server.ErrNotPrimary
	// ErrOverloaded: the server's admission gate shed the request (429 /
	// "overloaded" with a retry-after hint); the typed client backs off
	// the hinted duration — capped — and retries once.
	ErrOverloaded = server.ErrOverloaded
)

// Scheduler-facing capability interfaces (see internal/sched for the
// lifecycle). Front-ends that run the asynchronous scheduler — an Engine
// or Cluster with Config.LeaseTTL or Config.FallbackWorkers set, and the
// typed client speaking to such a server — implement both; transports
// and harnesses probe for them with type assertions, so the Service
// interface itself is unchanged.
type (
	// JobSource dispatches leased jobs to pull-based workers.
	JobSource = server.JobSource
	// LeaseAcker completes or abandons a lease without a result.
	LeaseAcker = server.LeaseAcker
)

// Compile-time guarantees of the one-API contract: both deployment
// shapes satisfy Service. (hyrec/client asserts the same for *Client.)
var (
	_ Service = (*Engine)(nil)
	_ Service = (*Cluster)(nil)
)

// DefaultConfig returns the paper's default parameters (k=10, r=10).
func DefaultConfig() Config { return server.DefaultConfig() }

// NewEngine builds a HyRec server engine.
func NewEngine(cfg Config) *Engine { return server.NewEngine(cfg) }

// NewWidget builds a client widget (cosine similarity, laptop device).
func NewWidget(opts ...WidgetOption) *Widget { return widget.New(opts...) }

// WithSimilarity overrides the widget's similarity metric.
func WithSimilarity(m Similarity) WidgetOption { return widget.WithSimilarity(m) }

// WithDevice sets the widget's device model.
func WithDevice(d Device) WidgetOption { return widget.WithDevice(d) }

// WithWorkers enables the widget's parallel (HTML5 web-worker analogue)
// execution mode with n workers; results are identical to the sequential
// widget.
func WithWorkers(n int) WidgetOption { return widget.WithWorkers(n) }

// Laptop is the reference client device.
func Laptop() Device { return widget.Laptop() }

// Smartphone is the paper's mobile client device.
func Smartphone() Device { return widget.Smartphone() }

// HTTPServer exposes an Engine over the paper's web API.
type HTTPServer = server.HTTPServer

// NewHTTPServer wraps an engine with the web API; rotateEvery > 0 rotates
// the anonymous mapping periodically in the background (call Start).
func NewHTTPServer(engine *Engine, rotateEvery time.Duration) *HTTPServer {
	return server.NewHTTPServer(engine, rotateEvery)
}

// NewServiceServer wraps any Service — engine, cluster, or a custom
// implementation — with the shared web API (legacy Table-1 endpoints
// plus the /v1 batch protocol).
func NewServiceServer(svc Service, rotateEvery time.Duration) *HTTPServer {
	return server.NewServer(svc, rotateEvery)
}

// Handler returns a ready-to-serve http.Handler for engine with anonymiser
// rotation every rotateEvery (0 disables): the one-liner deployment path.
func Handler(engine *Engine, rotateEvery time.Duration) http.Handler {
	return ServiceHandler(engine, rotateEvery)
}

// ServiceHandler is Handler generalized to any Service.
func ServiceHandler(svc Service, rotateEvery time.Duration) http.Handler {
	s := server.NewServer(svc, rotateEvery)
	s.Start()
	return s.Handler()
}
