package hyrec

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hyrec/internal/core"
)

// seedCommunities registers two taste communities of `per` users each.
func seedCommunities(e *Engine, per int) {
	for i := 0; i < per; i++ {
		a := core.UserID(1 + i)
		b := core.UserID(100 + i)
		for j := 0; j < 6; j++ {
			e.Rate(tctx, a, core.ItemID((i+j)%10), true)
			e.Rate(tctx, b, core.ItemID(500+(i+j)%10), true)
		}
	}
}

// converge runs full job/execute/apply cycles for every user.
func converge(t *testing.T, e *Engine, w *Widget, users []core.UserID, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for _, u := range users {
			job, err := e.Job(tctx, u)
			if err != nil {
				t.Fatalf("job(%v): %v", u, err)
			}
			res, _ := w.Execute(job)
			if _, err := e.ApplyResult(tctx, res); err != nil {
				t.Fatalf("apply(%v): %v", u, err)
			}
		}
	}
}

func communityUsers(per int) []core.UserID {
	users := make([]core.UserID, 0, 2*per)
	for i := 0; i < per; i++ {
		users = append(users, core.UserID(1+i), core.UserID(100+i))
	}
	return users
}

// The full production stack at once: differential privacy on candidate
// profiles, a parallel widget, anonymiser rotation mid-run, then a
// snapshot/restore cycle — every feature composing without interfering.
func TestIntegrationPrivacyWorkersRotationPersistence(t *testing.T) {
	rr, err := NewRandomizedResponse(4, 1000, 11)
	if err != nil {
		t.Fatal(err)
	}
	accountant := NewPrivacyAccountant(rr.Epsilon())

	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.CandidateFilter = accountant.Guard(rr.Filter())
	engine := NewEngine(cfg)
	widget := NewWidget(WithWorkers(4))

	const per = 12
	seedCommunities(engine, per)
	users := communityUsers(per)

	converge(t, engine, widget, users, 3)
	engine.RotateAnonymizer() // epoch change mid-run
	converge(t, engine, widget, users, 3)

	// Neighbourhoods must largely respect the community split despite the
	// ε=4 noise: count cross-community neighbours of user 1.
	hood, _ := engine.Neighbors(tctx, 1)
	if len(hood) == 0 {
		t.Fatal("user 1 has no neighbors")
	}
	cross := 0
	for _, v := range hood {
		if v >= 100 {
			cross++
		}
	}
	if cross > len(hood)/2 {
		t.Fatalf("privacy noise destroyed the communities: %d/%d cross-community in %v",
			cross, len(hood), hood)
	}
	if accountant.MaxSpent() == 0 {
		t.Fatal("accountant never charged")
	}

	// Snapshot, restore into a fresh engine, and verify identical state.
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := SaveSnapshot(path, CaptureSnapshot(engine)); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewEngine(cfg)
	if err := RestoreSnapshot(restored, snap); err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		origHood, _ := engine.Neighbors(tctx, u)
		restHood, _ := restored.Neighbors(tctx, u)
		if !reflect.DeepEqual(origHood, restHood) {
			t.Fatalf("user %v: neighbors diverged after restore", u)
		}
		if !engine.Profiles().Get(u).Equal(restored.Profiles().Get(u)) {
			t.Fatalf("user %v: profile diverged after restore", u)
		}
	}

	// The restored engine keeps serving (fresh anonymiser, old state).
	job, err := restored.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := widget.Execute(job)
	if _, err := restored.ApplyResult(tctx, res); err != nil {
		t.Fatalf("restored engine cannot serve: %v", err)
	}
}

// The permanent-noise variant keeps its guarantee through the engine: two
// jobs for the same user must embed the identical perturbed release of an
// unchanged candidate profile.
func TestIntegrationPermanentNoiseStableThroughEngine(t *testing.T) {
	rr, err := NewRandomizedResponse(1, 500, 3, WithPermanentNoise())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DisableAnonymizer = true // compare raw item IDs across jobs
	cfg.CandidateFilter = rr.Filter()
	engine := NewEngine(cfg)

	// Two users; user 2's profile will appear in user 1's candidate sets.
	for j := 0; j < 10; j++ {
		engine.Rate(tctx, 1, core.ItemID(j), true)
		engine.Rate(tctx, 2, core.ItemID(j), true)
	}

	release := func() []uint32 {
		job, err := engine.Job(tctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range job.Candidates {
			if c.ID == 2 {
				return c.Liked
			}
		}
		return nil
	}
	first := release()
	if first == nil {
		t.Skip("user 2 not sampled; population too small for candidate set")
	}
	for i := 0; i < 5; i++ {
		got := release()
		if got == nil {
			continue
		}
		if !reflect.DeepEqual(first, got) {
			t.Fatalf("permanent noise re-randomised: %v vs %v", first, got)
		}
	}
}

// System option: the rotation timer fires on virtual-time boundaries and
// replays keep working; combined here with wire fidelity so rotation
// exercises the full encode path.
func TestIntegrationSystemRotationWithWireFidelity(t *testing.T) {
	sys := NewSystem(DefaultConfig(), WithWireFidelity(), WithAnonymizerRotation(time.Hour))
	for h := 0; h < 6; h++ {
		tm := time.Duration(h) * time.Hour
		sys.Tick(tm)
		for u := core.UserID(1); u <= 8; u++ {
			sys.Rate(tm, core.Rating{User: u, Item: core.ItemID((int(u) + h) % 5), Liked: true})
		}
	}
	if sys.Engine().Meter().GzipBytes() == 0 {
		t.Fatal("no traffic metered")
	}
	if got := sys.Neighbors(1); len(got) == 0 {
		t.Fatal("no neighbors after replay with rotation")
	}
}
