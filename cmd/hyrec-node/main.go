// Command hyrec-node runs one node of a multi-node HyRec deployment:
// the same web API as hyrec-server, backed by internal/node — every
// node embeds the full partition ring but serves only the partitions
// the published node map assigns it, proxies the rest to their owners,
// streams each owned partition's state to a ring-distinct replica, and
// takes part in heartbeat-driven failover (a dead node's partitions
// promote on their replicas within a few heartbeat periods).
//
// A 3-node cluster is three invocations of the same command with the
// same -peers list and distinct -id/-addr:
//
//	hyrec-node -id n1 -addr :9001 -peers n1=http://127.0.0.1:9001,n2=http://127.0.0.1:9002,n3=http://127.0.0.1:9003
//	hyrec-node -id n2 -addr :9002 -peers n1=http://127.0.0.1:9001,n2=http://127.0.0.1:9002,n3=http://127.0.0.1:9003
//	hyrec-node -id n3 -addr :9003 -peers n1=http://127.0.0.1:9001,n2=http://127.0.0.1:9002,n3=http://127.0.0.1:9003
//
// Every member must run the same -partitions, -k, -r and -seed: the
// design rests on all processes computing identical engines, pseudonym
// spaces and lease lanes, so routing needs no coordination. Clients may
// connect to any node; hyrec/client follows not_primary redirects and
// topology updates automatically.
//
// With -snapshot, the node periodically saves its embedded cluster's
// frames plus a node-map sidecar stamp (state.snap.nodemap). On boot
// the stamp is informational: the node always starts from the static
// membership map and converges to the live cluster's epoch through the
// push/heartbeat protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hyrec/internal/node"
	"hyrec/internal/persist"
	"hyrec/internal/server"
	"hyrec/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-node", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":9001", "listen address")
		frame     = fs.String("frame-addr", "", "framed binary transport listen address (empty = disabled); advertise it to peers via the id=url|frameaddr form of -peers")
		id        = fs.String("id", "", "this node's unique ID (must appear in -peers)")
		advertise = fs.String("advertise", "", "base URL peers dial this node on (default: the -peers entry for -id)")
		peers     = fs.String("peers", "", "static membership: comma-separated id=url[|frameaddr] pairs, identical on every node")
		parts     = fs.Int("partitions", 8, "ring partition count (identical on every node)")
		k         = fs.Int("k", 10, "neighborhood size")
		r         = fs.Int("r", 10, "recommendations per job")
		seed      = fs.Int64("seed", 1, "randomness seed (identical on every node)")
		rotate    = fs.Duration("rotate", 0, "anonymous-mapping rotation period (0 disables; if set, set it on every node)")
		leaseTTL  = fs.Duration("lease-ttl", 30*time.Second, "job lease duration; > 0 enables the async scheduler")
		fallback  = fs.Int("fallback-workers", 0, "server-side fallback worker pool size")
		replEvery = fs.Duration("replicate-every", 100*time.Millisecond, "async replication tail period")
		antiEvery = fs.Duration("anti-entropy", 30*time.Second, "full-state replica sync period (<0 disables)")
		hbEvery   = fs.Duration("heartbeat", time.Second, "peer liveness probe period (<0 disables failover)")
		deadAfter = fs.Int("dead-after", 3, "consecutive missed heartbeats before a peer is declared dead")
		peerTO    = fs.Duration("peer-timeout", 5*time.Second, "node-to-node request timeout")
		peerSec   = fs.String("peer-secret", "", "shared secret gating the node plane (/v1/replicate, /v1/nodes); identical on every node, empty leaves it open")
		snapPath  = fs.String("snapshot", "", "snapshot base path for durable state (empty = stateless)")
		snapIvl   = fs.Duration("snapshot-interval", 5*time.Minute, "periodic snapshot period (with -snapshot)")
		grace     = fs.Duration("shutdown-grace", 10*time.Second, "in-flight request drain budget on shutdown")
		maxRate   = fs.Int("max-inflight-rating", 0, "admission bound on concurrent rating-ingest requests; excess answers 429 overloaded (0 = unlimited)")
		maxWork   = fs.Int("max-inflight-worker", 0, "admission bound on concurrent worker job traffic — parked long-polls, results, acks (0 = unlimited)")
		maxRead   = fs.Int("max-inflight-read", 0, "admission bound on concurrent rec/neighbor reads and user job fetches (0 = unlimited)")
		replCap   = fs.Int("repl-backlog", 0, "per-partition replication backlog cap while a mirror is down; past it one full re-ship replaces the queue (0 = default 8192, negative = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	members, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	if *id == "" {
		return errors.New("-id is required")
	}
	selfAddr := *advertise
	selfFrame := *frame
	for _, m := range members {
		if m.ID == *id {
			if selfAddr == "" {
				selfAddr = m.Addr
			}
			if selfFrame == "" {
				selfFrame = m.FrameAddr
			}
		}
	}
	if selfAddr == "" {
		return fmt.Errorf("node %q not found in -peers and no -advertise given", *id)
	}

	cfg := server.DefaultConfig()
	cfg.K = *k
	cfg.R = *r
	cfg.Seed = *seed
	cfg.LeaseTTL = *leaseTTL
	cfg.FallbackWorkers = *fallback
	cfg.MaxInflightRating = *maxRate
	cfg.MaxInflightWorker = *maxWork
	cfg.MaxInflightRead = *maxRead

	nd, err := node.New(node.Config{
		Self:             node.Member{ID: *id, Addr: selfAddr, FrameAddr: selfFrame},
		Members:          members,
		Partitions:       *parts,
		Engine:           cfg,
		ReplicateEvery:   *replEvery,
		ReplBacklog:      *replCap,
		AntiEntropyEvery: *antiEvery,
		HeartbeatEvery:   *hbEvery,
		DeadAfter:        *deadAfter,
		PeerTimeout:      *peerTO,
		PeerSecret:       *peerSec,
	})
	if err != nil {
		return err
	}

	var saver *persist.Saver
	if *snapPath != "" {
		switch snaps, lerr := persist.LoadClusterAny(*snapPath); {
		case lerr == nil:
			if err := persist.RestoreCluster(nd.Cluster(), snaps); err != nil {
				return fmt.Errorf("restore snapshot: %w", err)
			}
			fmt.Printf("restored %d users from %s.p*\n", nd.Cluster().Len(), *snapPath)
			if stamp, serr := persist.LoadNodeMap(*snapPath); serr == nil {
				fmt.Printf("snapshot was taken under node-map epoch %d\n", stamp.Epoch)
			}
		case errors.Is(lerr, os.ErrNotExist):
			fmt.Printf("no snapshot at %s.p*; starting fresh\n", *snapPath)
		default:
			return fmt.Errorf("load snapshot: %w", lerr)
		}
		base := *snapPath
		saver = persist.NewSaverFunc(func() error {
			if err := persist.SaveCluster(base, nd.Cluster()); err != nil {
				return err
			}
			return persist.SaveNodeMap(base, nd.Map())
		}, *snapIvl, func(err error) {
			log.Printf("snapshot save failed: %v", err)
		})
		saver.Start()
	}

	nd.Start()
	srv := server.NewServer(nd, *rotate)
	srv.RequireNodeSecret(*peerSec)
	srv.Start()

	m := nd.Map()
	primaries, replicas := 0, 0
	for _, info := range m.Nodes {
		if info.ID == *id {
			primaries, replicas = len(info.Primary), len(info.Replica)
		}
	}
	fmt.Printf("hyrec-node %s listening on %s (members=%d partitions=%d primary=%d replica=%d epoch=%d frame=%q)\n",
		*id, *addr, len(members), *parts, primaries, replicas, m.Epoch, selfFrame)
	defer nd.Close()
	return serve(*addr, selfFrame, srv, saver, *grace)
}

// parsePeers parses "id=url,id=url|frameaddr,..." into a membership
// list; the optional |frameaddr suffix advertises a member's framed
// transport listener.
func parsePeers(s string) ([]node.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-peers is required (id=url[|frameaddr] pairs, comma-separated)")
	}
	var out []node.Member
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url[|frameaddr])", pair)
		}
		url, frameAddr, _ := strings.Cut(url, "|")
		if url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url[|frameaddr])", pair)
		}
		out = append(out, node.Member{ID: id, Addr: strings.TrimRight(url, "/"), FrameAddr: frameAddr})
	}
	if len(out) > wire.MaxNodes {
		return nil, fmt.Errorf("%d peers exceeds the %d-node limit", len(out), wire.MaxNodes)
	}
	return out, nil
}

// serve mirrors cmd/hyrec-server's shutdown discipline: stop accepting,
// release parked worker long-polls, drain in-flight requests bounded by
// grace, then take the final snapshot.
func serve(addr, frameAddr string, hsrv *server.HTTPServer, saver *persist.Saver, grace time.Duration) error {
	if frameAddr != "" {
		ln, err := net.Listen("tcp", frameAddr)
		if err != nil {
			return fmt.Errorf("frame listener: %w", err)
		}
		// hsrv.Close tears the listener (and its connections) down.
		go func() {
			if err := hsrv.ServeFrames(ln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("frame listener: %v", err)
			}
		}()
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           hsrv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case <-ctx.Done():
		hsrv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			hsrv.Close()
			if saver != nil {
				if serr := saver.Close(); serr != nil {
					log.Printf("final snapshot: %v", serr)
				}
			}
			return err
		}
	}
	hsrv.Close()
	if saver != nil {
		if err := saver.Close(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Println("state saved")
	}
	return nil
}
