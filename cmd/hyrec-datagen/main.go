// Command hyrec-datagen writes synthetic rating traces calibrated to the
// paper's Table 2 datasets (ML1, ML2, ML3, Digg) in the hyrec-trace text
// format.
//
// Usage:
//
//	hyrec-datagen -dataset ml1 -scale 1.0 -out ml1.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hyrec/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-datagen", flag.ContinueOnError)
	var (
		name  = fs.String("dataset", "ml1", "dataset preset: ml1, ml2, ml3, digg")
		scale = fs.Float64("scale", 1.0, "scale factor in (0,1]")
		out   = fs.String("out", "", "output path (default <dataset>.trace)")
		seed  = fs.Int64("seed", 0, "override the preset seed (0 keeps preset)")
		stats = fs.Bool("stats", true, "print Table 2-style statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg dataset.GenConfig
	switch strings.ToLower(*name) {
	case "ml1":
		cfg = dataset.ML1Config()
	case "ml2":
		cfg = dataset.ML2Config()
	case "ml3":
		cfg = dataset.ML3Config()
	case "digg":
		cfg = dataset.DiggConfig()
	default:
		return fmt.Errorf("unknown dataset %q (want ml1|ml2|ml3|digg)", *name)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg = dataset.Scaled(cfg, *scale)

	tr, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = strings.ToLower(*name) + ".trace"
	}
	if err := dataset.SaveFile(path, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events)\n", path, len(tr.Events))
	if *stats {
		fmt.Println(dataset.ComputeStats(tr))
	}
	return nil
}
