// Command hyrec-server runs a standalone HyRec server exposing the
// paper's web API plus the versioned /v1 batch protocol — the Go
// analogue of the bundled Jetty deployment of Section 4.1.
//
// Usage:
//
//	hyrec-server -addr :8080 -k 10 -r 10 -rotate 1h \
//	    -snapshot state.snap -snapshot-interval 5m
//	hyrec-server -addr :8080 -partitions 8
//
// Endpoints: the legacy Table-1 set (/online, /neighbors, /rate,
// /recommendations, /stats, /healthz) and /v1/{rate,job,result,recs,
// neighbors} for the typed client (hyrec/client).
//
// With -partitions N (N > 1), the server runs a user-partitioned cluster
// of N engines behind the same web API (see internal/cluster). Both
// deployment shapes implement hyrec.Service, so one code path serves
// either. The cluster's topology is elastic: -scale M arms a SIGHUP
// handler that reshapes the running cluster to M partitions live —
// streaming only the moved users' state between engines — and
// POST /v1/topology {"partitions": M} does the same over the admin API
// at any time. Snapshots are cluster-aware: with -snapshot and
// -partitions N, the state lives in one frame per partition
// (state.snap.p0 … .pN-1), each saved with an atomic rename and stamped
// with its topology; a restart with a different -partitions value
// restores by replaying the migration (each user routes through the
// live consistent-hash ring to her current owner) instead of refusing.
//
// With -lease-ttl or -fallback-workers set, the asynchronous job
// scheduler runs (see internal/sched): every issued job carries a lease,
// ratings enqueue staleness-priority refresh work that pull-based
// workers (client.Worker, GET /v1/job?worker=1) drain, expired leases
// are re-issued, and -fallback-workers bounds a server-side pool that
// executes jobs locally when browsers churn out or nobody computes for a
// user. On a cluster the fallback budget is shared across partitions.
//
// With -snapshot set, the server restores the profile and KNN tables from
// the snapshot file at startup (if it exists), saves them periodically,
// and saves once more on SIGINT/SIGTERM before exiting. Shutdown is
// graceful: in-flight requests drain (bounded by -shutdown-grace), the
// anonymiser-rotation goroutine is stopped via Close, and only then does
// the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyrec"
	"hyrec/internal/persist"
	"hyrec/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-server", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		frame    = fs.String("frame-addr", "", "framed binary transport listen address (empty = disabled); clients opt in with client.WithFramed")
		parts    = fs.Int("partitions", 1, "number of user partitions (engines); >1 serves a cluster")
		k        = fs.Int("k", 10, "neighborhood size")
		r        = fs.Int("r", 10, "recommendations per job")
		rotate   = fs.Duration("rotate", time.Hour, "anonymous-mapping rotation period (0 disables)")
		seed     = fs.Int64("seed", 1, "randomness seed")
		noCache  = fs.Bool("no-profile-cache", false, "disable the serialized-profile cache")
		noAnon   = fs.Bool("no-anonymizer", false, "send real identifiers (debugging only)")
		gzipBest = fs.Bool("gzip-best", false, "use best-compression gzip instead of best-speed")
		maxItems = fs.Int("max-profile-items", 0, "truncate candidate profiles to this many items (0 = unlimited)")
		recLRU   = fs.Int("rec-cache-users", 0, "users whose last recommendations are retained (0 = default 4096)")
		snapPath = fs.String("snapshot", "", "snapshot file for durable state (empty = stateless)")
		snapIvl  = fs.Duration("snapshot-interval", 5*time.Minute, "periodic snapshot period (with -snapshot)")
		grace    = fs.Duration("shutdown-grace", 10*time.Second, "in-flight request drain budget on shutdown")
		leaseTTL = fs.Duration("lease-ttl", 0, "job lease duration; > 0 enables the async scheduler (leases, straggler re-issue)")
		leaseTry = fs.Int("lease-retries", 0, "lease re-issues before server-side fallback (0 = default, negative = none)")
		fallback = fs.Int("fallback-workers", 0, "server-side fallback worker pool size; > 0 also enables the scheduler")
		scale    = fs.Int("scale", 0, "target partition count applied on SIGHUP (live resharding; also available any time via POST /v1/topology); > 0 forces the cluster shape")
		maxRate  = fs.Int("max-inflight-rating", 0, "admission bound on concurrent rating-ingest requests; excess answers 429 overloaded (0 = unlimited)")
		maxWork  = fs.Int("max-inflight-worker", 0, "admission bound on concurrent worker job traffic — parked long-polls, results, acks (0 = unlimited)")
		maxRead  = fs.Int("max-inflight-read", 0, "admission bound on concurrent rec/neighbor reads and user job fetches (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hyrec.DefaultConfig()
	cfg.K = *k
	cfg.R = *r
	cfg.Seed = *seed
	cfg.DisableProfileCache = *noCache
	cfg.DisableAnonymizer = *noAnon
	cfg.MaxProfileItems = *maxItems
	cfg.RecCacheUsers = *recLRU
	cfg.LeaseTTL = *leaseTTL
	cfg.LeaseRetries = *leaseTry
	cfg.FallbackWorkers = *fallback
	cfg.MaxInflightRating = *maxRate
	cfg.MaxInflightWorker = *maxWork
	cfg.MaxInflightRead = *maxRead
	if *gzipBest {
		cfg.GzipLevel = wire.GzipBestCompact
	}

	if *parts < 1 {
		return fmt.Errorf("-partitions must be >= 1, got %d", *parts)
	}
	if *scale < 0 {
		return fmt.Errorf("-scale must be >= 1 when set, got %d", *scale)
	}

	// Both deployment shapes are a hyrec.Service; everything below this
	// switch is shape-agnostic.
	var svc hyrec.Service
	var saver *persist.Saver
	switch {
	case *parts > 1 || *scale > 0:
		// -scale forces the cluster shape even for one partition: only
		// a cluster can reshape its topology live.
		cl := hyrec.NewCluster(cfg, *parts)
		if *snapPath != "" {
			// One persist frame per partition (state.snap.p0 … .pN-1),
			// each renamed into place atomically and stamped with the
			// topology it was saved under. The restore is
			// topology-elastic: frames from any historical partition
			// count (including a legacy single-engine frame at the bare
			// path) load by replaying the migration — every user routes
			// through the live ring to her current owner.
			switch snaps, err := persist.LoadClusterAny(*snapPath); {
			case err == nil:
				if err := persist.RestoreCluster(cl, snaps); err != nil {
					return fmt.Errorf("restore cluster snapshot: %w", err)
				}
				if len(snaps) != *parts {
					fmt.Printf("restored %d users from a %d-partition snapshot into %d partitions (migration replay) from %s.p*\n",
						cl.Len(), len(snaps), *parts, *snapPath)
				} else {
					fmt.Printf("restored %d users across %d partitions from %s.p*\n", cl.Len(), *parts, *snapPath)
				}
			case errors.Is(err, os.ErrNotExist):
				// No partition frames — a legacy single-engine frame at
				// the bare path restores via the same migration replay.
				// A file that exists but fails to load (corrupt,
				// truncated, wrong version) refuses to boot rather than
				// silently serving an empty dataset next to saved state.
				switch snap, serr := persist.Load(*snapPath); {
				case serr == nil:
					if err := persist.RestoreCluster(cl, []*persist.Snapshot{snap}); err != nil {
						return fmt.Errorf("restore single-engine snapshot into cluster: %w", err)
					}
					fmt.Printf("restored %d users from single-engine snapshot %s into %d partitions (migration replay)\n",
						cl.Len(), *snapPath, *parts)
				case errors.Is(serr, os.ErrNotExist):
					fmt.Printf("no cluster snapshot at %s.p*; starting fresh\n", *snapPath)
				default:
					return fmt.Errorf("load legacy snapshot %s: %w", *snapPath, serr)
				}
			default:
				return fmt.Errorf("load cluster snapshot: %w", err)
			}
			saver = persist.NewClusterSaver(cl, *snapPath, *snapIvl, func(err error) {
				log.Printf("cluster snapshot save failed: %v", err)
			})
			saver.Start()
		}
		if *scale > 0 {
			// SIGHUP performs the live resharding to the -scale target:
			// kill -HUP is the zero-downtime capacity lever.
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			go func() {
				for range hup {
					log.Printf("SIGHUP: scaling to %d partitions", *scale)
					if err := cl.Scale(context.Background(), *scale); err != nil {
						log.Printf("scale to %d failed: %v", *scale, err)
						continue
					}
					log.Printf("scale complete: %d partitions, %d users moved total",
						cl.NumPartitions(), cl.Topology().UsersMovedTotal)
				}
			}()
		}
		svc = cl
	default:
		engine := hyrec.NewEngine(cfg)
		if *snapPath != "" {
			switch snap, err := persist.Load(*snapPath); {
			case err == nil:
				if snap.Partitions > 1 {
					return fmt.Errorf("snapshot %s holds partition %d of a %d-partition deployment; restart with -partitions %d", *snapPath, snap.Partition, snap.Partitions, snap.Partitions)
				}
				if err := persist.Restore(engine, snap); err != nil {
					return fmt.Errorf("restore snapshot: %w", err)
				}
				fmt.Printf("restored %d users from %s\n", engine.Profiles().Len(), *snapPath)
			case errors.Is(err, os.ErrNotExist):
				// Partition frames next to the bare path mean this
				// deployment used to run partitioned: refuse rather than
				// silently ignoring all saved state.
				if _, statErr := os.Stat(persist.PartitionPath(*snapPath, 0)); statErr == nil {
					return fmt.Errorf("found cluster snapshot frames at %s.p*; restart with the matching -partitions value (or move them aside to start fresh)", *snapPath)
				}
				fmt.Printf("no snapshot at %s; starting fresh\n", *snapPath)
			default:
				return fmt.Errorf("load snapshot: %w", err)
			}
			saver = persist.NewSaver(engine, *snapPath, *snapIvl, func(err error) {
				log.Printf("snapshot save failed: %v", err)
			})
			saver.Start()
		}
		svc = engine
	}

	srv := hyrec.NewServiceServer(svc, *rotate)
	srv.Start()

	fmt.Printf("hyrec-server listening on %s (partitions=%d k=%d r=%d rotate=%s sched=%v fallback=%d scale-on-HUP=%d frame=%q)\n",
		*addr, *parts, *k, *r, *rotate, cfg.SchedulerEnabled(), *fallback, *scale, *frame)
	defer svc.Close()
	return serve(*addr, *frame, srv, saver, *grace)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully: stop accepting, drain in-flight requests (bounded by
// grace), drain the rotation goroutine via Close, and take the final
// snapshot when a saver is configured.
func serve(addr, frameAddr string, hsrv *hyrec.HTTPServer, saver *persist.Saver, grace time.Duration) error {
	if frameAddr != "" {
		ln, err := net.Listen("tcp", frameAddr)
		if err != nil {
			return fmt.Errorf("frame listener: %w", err)
		}
		// hsrv.Close tears the listener (and its connections) down.
		go func() {
			if err := hsrv.ServeFrames(ln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("frame listener: %v", err)
			}
		}()
	}
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: hsrv.Handler(),
		// Bound slow or stuck clients so one bad peer cannot pin a
		// connection: headers must arrive promptly, whole requests and
		// responses are capped, and idle keep-alives are reaped.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case <-ctx.Done():
		// Release parked worker long-polls (and stop rotation) first:
		// http.Server.Shutdown does not cancel in-flight request
		// contexts, so a parked /v1/job?worker=1 would otherwise pin its
		// connection for the whole grace period.
		hsrv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			hsrv.Close()
			if saver != nil {
				if serr := saver.Close(); serr != nil {
					log.Printf("final snapshot: %v", serr)
				}
			}
			return err
		}
	}
	// Drain the anonymiser-rotation goroutine before the final snapshot,
	// so no rotation races the state capture.
	hsrv.Close()
	if saver != nil {
		if err := saver.Close(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Println("state saved")
	}
	return nil
}
