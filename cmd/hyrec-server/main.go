// Command hyrec-server runs a standalone HyRec server exposing the
// paper's web API — the Go analogue of the bundled Jetty deployment of
// Section 4.1.
//
// Usage:
//
//	hyrec-server -addr :8080 -k 10 -r 10 -rotate 1h \
//	    -snapshot state.snap -snapshot-interval 5m
//	hyrec-server -addr :8080 -partitions 8
//
// Endpoints (Table 1): /online, /neighbors, /rate, /recommendations,
// /stats, /healthz.
//
// With -partitions N (N > 1), the server runs a user-partitioned cluster
// of N engines behind the same web API (see internal/cluster): requests
// are routed to the partition owning the user, and candidate sets are
// exchanged across partitions so recommendation quality matches the
// single-engine deployment. Snapshots are not yet cluster-aware; -snapshot
// requires -partitions 1.
//
// With -snapshot set, the server restores the profile and KNN tables from
// the snapshot file at startup (if it exists), saves them periodically,
// and saves once more on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyrec"
	"hyrec/internal/persist"
	"hyrec/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-server", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		parts    = fs.Int("partitions", 1, "number of user partitions (engines); >1 serves a cluster")
		k        = fs.Int("k", 10, "neighborhood size")
		r        = fs.Int("r", 10, "recommendations per job")
		rotate   = fs.Duration("rotate", time.Hour, "anonymous-mapping rotation period (0 disables)")
		seed     = fs.Int64("seed", 1, "randomness seed")
		noCache  = fs.Bool("no-profile-cache", false, "disable the serialized-profile cache")
		noAnon   = fs.Bool("no-anonymizer", false, "send real identifiers (debugging only)")
		gzipBest = fs.Bool("gzip-best", false, "use best-compression gzip instead of best-speed")
		maxItems = fs.Int("max-profile-items", 0, "truncate candidate profiles to this many items (0 = unlimited)")
		snapPath = fs.String("snapshot", "", "snapshot file for durable state (empty = stateless)")
		snapIvl  = fs.Duration("snapshot-interval", 5*time.Minute, "periodic snapshot period (with -snapshot)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hyrec.DefaultConfig()
	cfg.K = *k
	cfg.R = *r
	cfg.Seed = *seed
	cfg.DisableProfileCache = *noCache
	cfg.DisableAnonymizer = *noAnon
	cfg.MaxProfileItems = *maxItems
	if *gzipBest {
		cfg.GzipLevel = wire.GzipBestCompact
	}

	if *parts < 1 {
		return fmt.Errorf("-partitions must be >= 1, got %d", *parts)
	}
	if *parts > 1 {
		// Multi-partition mode: a user-partitioned cluster behind the same
		// web API. Snapshots are single-engine for now; refuse the
		// combination rather than silently persisting one partition.
		if *snapPath != "" {
			return fmt.Errorf("-snapshot is not supported with -partitions > 1")
		}
		c := hyrec.NewCluster(cfg, *parts)
		srv := hyrec.NewClusterHTTPServer(c, *rotate)
		srv.Start()
		defer srv.Close()
		fmt.Printf("hyrec-server listening on %s (partitions=%d k=%d r=%d rotate=%s)\n",
			*addr, *parts, *k, *r, *rotate)
		return serve(*addr, srv.Handler(), nil)
	}

	engine := hyrec.NewEngine(cfg)

	var saver *persist.Saver
	if *snapPath != "" {
		switch snap, err := persist.Load(*snapPath); {
		case err == nil:
			if err := persist.Restore(engine, snap); err != nil {
				return fmt.Errorf("restore snapshot: %w", err)
			}
			fmt.Printf("restored %d users from %s\n", engine.Profiles().Len(), *snapPath)
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no snapshot at %s; starting fresh\n", *snapPath)
		default:
			return fmt.Errorf("load snapshot: %w", err)
		}
		saver = persist.NewSaver(engine, *snapPath, *snapIvl, func(err error) {
			log.Printf("snapshot save failed: %v", err)
		})
		saver.Start()
	}

	srv := hyrec.NewHTTPServer(engine, *rotate)
	srv.Start()
	defer srv.Close()

	fmt.Printf("hyrec-server listening on %s (k=%d r=%d rotate=%s)\n", *addr, *k, *r, *rotate)
	return serve(*addr, srv.Handler(), saver)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully and takes the final snapshot (when a saver is configured).
func serve(addr string, handler http.Handler, saver *persist.Saver) error {
	httpSrv := &http.Server{Addr: addr, Handler: handler}

	// Graceful shutdown: stop accepting, then take the final snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			if saver != nil {
				if serr := saver.Close(); serr != nil {
					log.Printf("final snapshot: %v", serr)
				}
			}
			return err
		}
	}
	if saver != nil {
		if err := saver.Close(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Println("state saved")
	}
	return nil
}
