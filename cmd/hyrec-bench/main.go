// Command hyrec-bench regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment prints a plain-text table whose
// rows mirror the corresponding figure's series; EXPERIMENTS.md records
// paper-vs-measured values.
//
// Usage:
//
//	hyrec-bench -exp all                 # everything, default scales
//	hyrec-bench -exp fig3 -scale 0.3     # one figure, custom workload scale
//	hyrec-bench -exp table2,fig10 -out results.txt
//
// Experiments: table2 fig3 fig4 fig5 fig6 fig7 table3 fig8 fig9 fig10
// fig11 fig12 fig13 bandwidth — plus the extension studies privacy
// (ε-randomized-response quality trade-off), staleness (TiVo-style
// item-based CF vs HyRec), churn (availability vs KNN quality), sampler
// (the §3.1 candidate rule dissected), metrics (similarity metrics
// compared end-to-end), cluster (recall of the partitioned cluster vs the
// single engine), clusterscale (Rate+Job throughput, 1 vs 4 vs 16
// partitions), rebalance (recall of a live 2→4 scale-out mid-replay vs a
// statically 4-partitioned cluster), and capacity (the internal/bench
// scenario matrix — including the rebalance users-moved/sec workload:
// throughput, p50/p99 latency and allocs/op per named workload, on
// engine, cluster and typed-client-over-the-wire deployments).
//
// The capacity experiment additionally maintains the repo's perf
// trajectory file:
//
//	hyrec-bench -exp capacity -bench-out BENCH_hotpath.json     # refresh the baseline
//	hyrec-bench -exp capacity -bench-baseline BENCH_hotpath.json # CI regression guard
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"hyrec/internal/bench"
	"hyrec/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "comma-separated experiments (or 'all')")
		scale    = fs.Float64("scale", 0, "workload scale override (0 = per-experiment default)")
		requests = fs.Int("requests", 0, "request-count override for load experiments")
		window   = fs.Duration("window", 0, "measurement-window override for throughput experiments (clusterscale)")
		seed     = fs.Int64("seed", 0, "seed override")
		outPath  = fs.String("out", "", "also write results to this file")
		verbose  = fs.Bool("v", false, "log progress while experiments run")

		benchOut  = fs.String("bench-out", "", "capacity: write the JSON report here (e.g. BENCH_hotpath.json)")
		benchBase = fs.String("bench-baseline", "", "capacity: compare against this committed report and exit non-zero on regression")
		benchTput = fs.Float64("bench-tolerance", 0, "capacity: min current/baseline throughput ratio (default 0.25)")
		benchAllo = fs.Float64("bench-allocs-tolerance", 0, "capacity: max current/baseline allocs/op ratio (default 1.5)")
		benchCaps = fs.String("bench-allocs-cap", "", "capacity: comma-separated absolute allocs/op ceilings, scenario/service/mode=N (e.g. job-worker-heavy/engine/inproc=55)")
		benchWork = fs.Int("bench-workers", 0, "capacity: closed-loop workers (default GOMAXPROCS)")
		benchUser = fs.Int("bench-users", 0, "capacity: seeded population (default 512)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	opt := experiments.Options{Scale: *scale, Requests: *requests, Window: *window, Seed: *seed}
	if *verbose {
		opt.Out = os.Stderr
	}

	all := []string{"table2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "bandwidth",
		"privacy", "staleness", "churn", "sampler", "metrics",
		"cluster", "clusterscale", "rebalance", "capacity"}
	selected := strings.Split(*exp, ",")
	if *exp == "all" {
		selected = all
	}

	var fig7Rows []experiments.Fig7Row
	for _, name := range selected {
		name = strings.TrimSpace(strings.ToLower(name))
		start := time.Now()
		fmt.Fprintf(out, "\n===== %s =====\n", name)
		switch name {
		case "table2":
			experiments.FprintTable2(out, experiments.Table2(opt))
		case "fig3":
			experiments.FprintFigure3(out, experiments.Figure3(opt))
		case "fig4":
			experiments.FprintFigure4(out, experiments.Figure4(opt))
		case "fig5":
			experiments.FprintFigure5(out, experiments.Figure5(opt))
		case "fig6":
			experiments.FprintFigure6(out, experiments.Figure6(opt))
		case "fig7":
			fig7Rows = experiments.Figure7(opt)
			experiments.FprintFigure7(out, fig7Rows)
		case "table3":
			experiments.FprintTable3(out, experiments.Table3(opt, fig7Rows))
		case "fig8":
			experiments.FprintFigure8(out, experiments.Figure8(opt))
		case "fig9":
			experiments.FprintFigure9(out, experiments.Figure9(opt))
		case "fig10":
			experiments.FprintFigure10(out, experiments.Figure10(opt))
		case "fig11":
			experiments.FprintFigure11(out, experiments.Figure11(opt))
		case "fig12":
			experiments.FprintFigure12(out, experiments.Figure12(opt))
		case "fig13":
			experiments.FprintFigure13(out, experiments.Figure13(opt))
		case "bandwidth":
			experiments.FprintBandwidth(out, experiments.Bandwidth(opt))
		case "privacy":
			experiments.FprintPrivacy(out, experiments.PrivacyAblation(opt))
		case "staleness":
			experiments.FprintTivo(out, experiments.StalenessStudy(opt))
		case "churn":
			experiments.FprintChurn(out, experiments.ChurnStudy(opt))
		case "sampler":
			experiments.FprintSampler(out, experiments.SamplerAblation(opt))
		case "metrics":
			experiments.FprintMetrics(out, experiments.MetricCompare(opt))
		case "cluster":
			experiments.FprintClusterRecall(out, experiments.ClusterRecall(opt))
		case "clusterscale":
			experiments.FprintClusterScaling(out, experiments.ClusterScaling(opt))
		case "rebalance":
			experiments.FprintRebalanceRecall(out, experiments.RebalanceRecall(opt))
		case "capacity":
			bopt := bench.Options{Window: *window, Workers: *benchWork, Seed: *seed, Users: *benchUser}
			rep, err := bench.Capacity(context.Background(), bopt)
			if err != nil {
				return fmt.Errorf("capacity: %w", err)
			}
			bench.Fprint(out, rep)
			if *benchOut != "" {
				if err := rep.WriteFile(*benchOut); err != nil {
					return err
				}
				fmt.Fprintf(out, "report written to %s\n", *benchOut)
			}
			if *benchBase != "" {
				baseline, err := bench.ReadReport(*benchBase)
				if err != nil {
					return err
				}
				tol := bench.Tolerance{MinThroughputRatio: *benchTput, MaxAllocsRatio: *benchAllo}
				if *benchCaps != "" {
					tol.AllocCaps = make(map[string]float64)
					for _, kv := range strings.Split(*benchCaps, ",") {
						key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
						if !ok {
							return fmt.Errorf("capacity: malformed -bench-allocs-cap entry %q (want scenario/service/mode=N)", kv)
						}
						ceil, err := strconv.ParseFloat(val, 64)
						if err != nil {
							return fmt.Errorf("capacity: -bench-allocs-cap %q: %w", kv, err)
						}
						tol.AllocCaps[key] = ceil
					}
				}
				if issues := bench.Compare(baseline, rep, tol); len(issues) > 0 {
					for _, issue := range issues {
						fmt.Fprintf(out, "REGRESSION %s\n", issue)
					}
					return fmt.Errorf("capacity: %d regression(s) vs %s", len(issues), *benchBase)
				}
				fmt.Fprintf(out, "no regression vs %s\n", *benchBase)
			}
		default:
			return fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(all, " "))
		}
		fmt.Fprintf(out, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
