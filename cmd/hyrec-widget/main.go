// Command hyrec-widget simulates one or more browser widgets against a
// running hyrec-server through the typed client: each simulated user
// rates random items (batched over the /v1 wire protocol), requests a
// personalization job, executes KNN selection and item recommendation
// locally, and posts the result back — the full client loop of
// Section 3.2 over the real network path.
//
// Usage:
//
//	hyrec-widget -server http://localhost:8080 -users 50 -requests 20
//
// With -worker N the command instead runs N pull-based client.Worker
// loops against the server's scheduler (GET /v1/job?worker=1): each
// worker leases the stalest pending job, computes it with the widget
// kernel, and posts the result. -abandon P makes each worker abandon a
// leased job with probability P (politely, via /v1/ack done=false; add
// -silent-abandon for crash-style churn where the lease must expire) —
// the churny-worker scenario the scheduler's straggler re-issue and
// fallback pool exist for.
//
//	hyrec-widget -server http://localhost:8080 -worker 4 -abandon 0.5 -work-duration 5s
//
// Adding -ws moves the workers onto the persistent WebSocket transport
// (GET /v1/worker/ws): one connection per worker, jobs pushed by the
// server against credit grants instead of long-polled.
//
//	hyrec-widget -server http://localhost:8080 -worker 4 -ws -work-duration 5s
//
// With -fleet N the command instead drives a seeded deterministic
// browser fleet (internal/fleet) of N heterogeneous sessions over
// WebSockets — tab lifetimes, device classes and churn all drawn from
// -seed — and reports convergence, watching the server's /stats for the
// sched_unrefreshed gauge. -fleet-disconnect F severs fraction F of the
// fleet the moment half the population has converged.
//
//	hyrec-widget -server http://localhost:8080 -fleet 200 -fleet-users 50 -fleet-disconnect 0.4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"hyrec"
	"hyrec/client"
	"hyrec/internal/fleet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-widget", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://localhost:8080", "hyrec-server base URL")
		users    = fs.Int("users", 20, "number of simulated users")
		requests = fs.Int("requests", 10, "requests per user")
		items    = fs.Int("items", 500, "item-ID space")
		seed     = fs.Int64("seed", 1, "randomness seed")
		phone    = fs.Bool("smartphone", false, "simulate a smartphone device")
		workers  = fs.Int("workers", 1, "parallel web-worker count inside each widget")
		jaccard  = fs.Bool("jaccard", false, "use Jaccard similarity instead of cosine")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request deadline")
		retries  = fs.Int("retries", 2, "retry attempts on transient failures")
		verbose  = fs.Bool("v", false, "log every interaction")
		nWorkers = fs.Int("worker", 0, "run this many pull-based scheduler workers instead of simulated users")
		abandon  = fs.Float64("abandon", 0, "worker/fleet-mode: probability of abandoning each leased job")
		silent   = fs.Bool("silent-abandon", false, "worker/fleet-mode: abandon by vanishing (lease must expire) instead of acking")
		workFor  = fs.Duration("work-duration", 2*time.Second, "worker/fleet-mode: how long the run may take")
		useWS    = fs.Bool("ws", false, "worker-mode: use the WebSocket transport instead of long-polling")
		framed   = fs.String("framed", "", "host:port of the server's framed listener (-frame-addr); hot paths ride one multiplexed binary connection with JSON fallback")

		fleetN    = fs.Int("fleet", 0, "drive a deterministic browser fleet of this many sessions over WebSockets")
		fleetU    = fs.Int("fleet-users", 0, "fleet-mode: user population whose convergence the fleet is judged on")
		fleetDrop = fs.Float64("fleet-disconnect", 0, "fleet-mode: sever this fraction of the fleet at 50% convergence")
		fleetTS   = fs.Float64("fleet-timescale", 0.01, "fleet-mode: multiplier on plan durations (tab lifetimes, join offsets)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fleetN > 0 {
		return runFleet(context.Background(), *server, *fleetN, *fleetU, *seed,
			*abandon, *silent, *fleetDrop, *fleetTS, *workFor)
	}

	opts := []hyrec.WidgetOption{}
	if *phone {
		opts = append(opts, hyrec.WithDevice(hyrec.Smartphone()))
	}
	if *workers > 1 {
		opts = append(opts, hyrec.WithWorkers(*workers))
	}
	if *jaccard {
		opts = append(opts, hyrec.WithSimilarity(hyrec.Jaccard{}))
	}
	w := hyrec.NewWidget(opts...)
	rng := rand.New(rand.NewSource(*seed))

	copts := []client.Option{
		client.WithTimeout(*timeout),
		client.WithRetries(*retries, 50*time.Millisecond),
	}
	if *framed != "" {
		copts = append(copts, client.WithFramed(*framed))
	}
	c := client.New(*server, copts...)
	defer c.Close()
	ctx := context.Background()

	if *nWorkers > 0 {
		return runWorkers(ctx, c, *nWorkers, *useWS, *abandon, *silent, *seed, *workFor, *verbose)
	}

	var totalJobs, totalRecs int
	start := time.Now()
	for round := 0; round < *requests; round++ {
		// Each round's ratings go out as one batch — the wire path real
		// deployments amortize per-request overhead with.
		ratings := make([]hyrec.Rating, *users)
		for u := 0; u < *users; u++ {
			ratings[u] = hyrec.Rating{
				User:  hyrec.UserID(u),
				Item:  hyrec.ItemID(rng.Intn(*items)),
				Liked: rng.Float64() < 0.7,
			}
		}
		if err := c.RateBatch(ctx, ratings); err != nil {
			return fmt.Errorf("rate batch: %w", err)
		}
		for u := 0; u < *users; u++ {
			job, err := c.Job(ctx, hyrec.UserID(u))
			if err != nil {
				return fmt.Errorf("request job: %w", err)
			}
			res, timing := w.Execute(job)
			recs, err := c.ApplyResult(ctx, res)
			if err != nil {
				return fmt.Errorf("post result: %w", err)
			}
			totalJobs++
			totalRecs += len(recs)
			if *verbose {
				fmt.Printf("u%d: %d candidates → %d neighbors, %d recs in %v\n",
					u, len(job.Candidates), len(res.Neighbors), len(recs), timing.Total)
			}
		}
	}
	fmt.Printf("executed %d jobs (%d recommendations) in %v\n", totalJobs, totalRecs, time.Since(start))
	return nil
}

// runWorkers drains the server's staleness queue with n worker loops —
// long-polling client.Worker by default, persistent-socket
// client.WSWorker with useWS — for the given duration and reports what
// they completed and abandoned.
func runWorkers(ctx context.Context, c *client.Client, n int, useWS bool, abandon float64,
	silent bool, seed int64, d time.Duration, verbose bool) error {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	type worker interface {
		Run(ctx context.Context) error
		Stats() (done, abandoned int64)
	}
	workers := make([]worker, n)
	var wg sync.WaitGroup
	for i := range workers {
		opts := []client.WorkerOption{client.WithPollBudget(500 * time.Millisecond)}
		if abandon > 0 {
			opts = append(opts, client.WithAbandonProb(abandon, seed+int64(i)))
		}
		if silent {
			opts = append(opts, client.WithSilentAbandon())
		}
		if useWS {
			workers[i] = client.NewWSWorker(c, opts...)
		} else {
			workers[i] = client.NewWorker(c, opts...)
		}
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && verbose {
				log.Printf("worker: %v", err)
			}
		}(workers[i])
	}
	wg.Wait()
	var done, abandoned int64
	for _, w := range workers {
		dn, ab := w.Stats()
		done += dn
		abandoned += ab
	}
	transport := "longpoll"
	if useWS {
		transport = "ws"
	}
	fmt.Printf("workers=%d transport=%s completed=%d abandoned=%d in %v\n", n, transport, done, abandoned, d)
	return nil
}

// runFleet expands a deterministic session plan and drives it at the
// server over WebSockets, probing GET /stats for convergence. It exits
// non-zero when the fleet fails to converge every user within the
// budget — the contract the smoke test leans on.
func runFleet(ctx context.Context, server string, sessions, users int, seed int64,
	abandon float64, silent bool, drop, timeScale float64, budget time.Duration) error {
	cfg := fleet.Config{
		Seed:        seed,
		Sessions:    sessions,
		AbandonProb: abandon,
	}
	if abandon > 0 {
		cfg.ChurnyFrac = 1
		if silent {
			cfg.SilentFrac = 1
		}
	}
	if drop > 0 {
		if users <= 0 {
			return fmt.Errorf("-fleet-disconnect needs -fleet-users to judge 50%% convergence")
		}
		cfg.Disconnects = []fleet.Disconnect{{Frac: drop, AtConvergedFrac: 0.5}}
	}
	plan := fleet.NewPlan(cfg)
	fmt.Printf("fleet plan %s: %d sessions %v\n", plan.Digest, sessions, plan.ClassCounts())

	rep, err := fleet.Run(ctx, plan, fleet.Options{
		Target:    fleet.NewWSTarget(server),
		Probe:     statsProbe(server),
		Users:     users,
		TimeScale: timeScale,
		Budget:    budget,
	})
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	fmt.Printf("%s\n", rep)
	if !rep.Converged {
		return fmt.Errorf("fleet did not converge within %v", budget)
	}
	return nil
}

// statsProbe adapts GET /stats to the fleet's convergence probe: the
// sched_unrefreshed gauge plus quiet derived from the queue gauges. A
// scrape failure reports not-converged rather than aborting the run.
func statsProbe(server string) func() (int, bool) {
	return func() (int, bool) {
		resp, err := http.Get(server + "/stats")
		if err != nil {
			return 1, false
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return 1, false
		}
		num := func(k string) float64 {
			v, _ := m[k].(float64)
			return v
		}
		quiet := num("sched_pending") == 0 && num("sched_leased") == 0 && num("sched_fallback_queued") == 0
		return int(num("sched_unrefreshed")), quiet
	}
}
