// Command hyrec-widget simulates one or more browser widgets against a
// running hyrec-server through the typed client: each simulated user
// rates random items (batched over the /v1 wire protocol), requests a
// personalization job, executes KNN selection and item recommendation
// locally, and posts the result back — the full client loop of
// Section 3.2 over the real network path.
//
// Usage:
//
//	hyrec-widget -server http://localhost:8080 -users 50 -requests 20
//
// With -worker N the command instead runs N pull-based client.Worker
// loops against the server's scheduler (GET /v1/job?worker=1): each
// worker leases the stalest pending job, computes it with the widget
// kernel, and posts the result. -abandon P makes each worker abandon a
// leased job with probability P (politely, via /v1/ack done=false; add
// -silent-abandon for crash-style churn where the lease must expire) —
// the churny-worker scenario the scheduler's straggler re-issue and
// fallback pool exist for.
//
//	hyrec-widget -server http://localhost:8080 -worker 4 -abandon 0.5 -work-duration 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"hyrec"
	"hyrec/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-widget", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://localhost:8080", "hyrec-server base URL")
		users    = fs.Int("users", 20, "number of simulated users")
		requests = fs.Int("requests", 10, "requests per user")
		items    = fs.Int("items", 500, "item-ID space")
		seed     = fs.Int64("seed", 1, "randomness seed")
		phone    = fs.Bool("smartphone", false, "simulate a smartphone device")
		workers  = fs.Int("workers", 1, "parallel web-worker count inside each widget")
		jaccard  = fs.Bool("jaccard", false, "use Jaccard similarity instead of cosine")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request deadline")
		retries  = fs.Int("retries", 2, "retry attempts on transient failures")
		verbose  = fs.Bool("v", false, "log every interaction")
		nWorkers = fs.Int("worker", 0, "run this many pull-based scheduler workers instead of simulated users")
		abandon  = fs.Float64("abandon", 0, "worker-mode: probability of abandoning each leased job")
		silent   = fs.Bool("silent-abandon", false, "worker-mode: abandon by vanishing (lease must expire) instead of acking")
		workFor  = fs.Duration("work-duration", 2*time.Second, "worker-mode: how long the workers run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []hyrec.WidgetOption{}
	if *phone {
		opts = append(opts, hyrec.WithDevice(hyrec.Smartphone()))
	}
	if *workers > 1 {
		opts = append(opts, hyrec.WithWorkers(*workers))
	}
	if *jaccard {
		opts = append(opts, hyrec.WithSimilarity(hyrec.Jaccard{}))
	}
	w := hyrec.NewWidget(opts...)
	rng := rand.New(rand.NewSource(*seed))

	c := client.New(*server,
		client.WithTimeout(*timeout),
		client.WithRetries(*retries, 50*time.Millisecond))
	defer c.Close()
	ctx := context.Background()

	if *nWorkers > 0 {
		return runWorkers(ctx, c, *nWorkers, *abandon, *silent, *seed, *workFor, *verbose)
	}

	var totalJobs, totalRecs int
	start := time.Now()
	for round := 0; round < *requests; round++ {
		// Each round's ratings go out as one batch — the wire path real
		// deployments amortize per-request overhead with.
		ratings := make([]hyrec.Rating, *users)
		for u := 0; u < *users; u++ {
			ratings[u] = hyrec.Rating{
				User:  hyrec.UserID(u),
				Item:  hyrec.ItemID(rng.Intn(*items)),
				Liked: rng.Float64() < 0.7,
			}
		}
		if err := c.RateBatch(ctx, ratings); err != nil {
			return fmt.Errorf("rate batch: %w", err)
		}
		for u := 0; u < *users; u++ {
			job, err := c.Job(ctx, hyrec.UserID(u))
			if err != nil {
				return fmt.Errorf("request job: %w", err)
			}
			res, timing := w.Execute(job)
			recs, err := c.ApplyResult(ctx, res)
			if err != nil {
				return fmt.Errorf("post result: %w", err)
			}
			totalJobs++
			totalRecs += len(recs)
			if *verbose {
				fmt.Printf("u%d: %d candidates → %d neighbors, %d recs in %v\n",
					u, len(job.Candidates), len(res.Neighbors), len(recs), timing.Total)
			}
		}
	}
	fmt.Printf("executed %d jobs (%d recommendations) in %v\n", totalJobs, totalRecs, time.Since(start))
	return nil
}

// runWorkers drains the server's staleness queue with n client.Worker
// loops for the given duration and reports what they completed and
// abandoned.
func runWorkers(ctx context.Context, c *client.Client, n int, abandon float64,
	silent bool, seed int64, d time.Duration, verbose bool) error {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	workers := make([]*client.Worker, n)
	var wg sync.WaitGroup
	for i := range workers {
		opts := []client.WorkerOption{client.WithPollBudget(500 * time.Millisecond)}
		if abandon > 0 {
			opts = append(opts, client.WithAbandonProb(abandon, seed+int64(i)))
		}
		if silent {
			opts = append(opts, client.WithSilentAbandon())
		}
		workers[i] = client.NewWorker(c, opts...)
		wg.Add(1)
		go func(w *client.Worker) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && verbose {
				log.Printf("worker: %v", err)
			}
		}(workers[i])
	}
	wg.Wait()
	var done, abandoned int64
	for _, w := range workers {
		dn, ab := w.Stats()
		done += dn
		abandoned += ab
	}
	fmt.Printf("workers=%d completed=%d abandoned=%d in %v\n", n, done, abandoned, d)
	return nil
}
