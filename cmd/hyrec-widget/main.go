// Command hyrec-widget simulates one or more browser widgets against a
// running hyrec-server through the typed client: each simulated user
// rates random items (batched over the /v1 wire protocol), requests a
// personalization job, executes KNN selection and item recommendation
// locally, and posts the result back — the full client loop of
// Section 3.2 over the real network path.
//
// Usage:
//
//	hyrec-widget -server http://localhost:8080 -users 50 -requests 20
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"hyrec"
	"hyrec/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-widget", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://localhost:8080", "hyrec-server base URL")
		users    = fs.Int("users", 20, "number of simulated users")
		requests = fs.Int("requests", 10, "requests per user")
		items    = fs.Int("items", 500, "item-ID space")
		seed     = fs.Int64("seed", 1, "randomness seed")
		phone    = fs.Bool("smartphone", false, "simulate a smartphone device")
		workers  = fs.Int("workers", 1, "parallel web-worker count inside each widget")
		jaccard  = fs.Bool("jaccard", false, "use Jaccard similarity instead of cosine")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request deadline")
		retries  = fs.Int("retries", 2, "retry attempts on transient failures")
		verbose  = fs.Bool("v", false, "log every interaction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []hyrec.WidgetOption{}
	if *phone {
		opts = append(opts, hyrec.WithDevice(hyrec.Smartphone()))
	}
	if *workers > 1 {
		opts = append(opts, hyrec.WithWorkers(*workers))
	}
	if *jaccard {
		opts = append(opts, hyrec.WithSimilarity(hyrec.Jaccard{}))
	}
	w := hyrec.NewWidget(opts...)
	rng := rand.New(rand.NewSource(*seed))

	c := client.New(*server,
		client.WithTimeout(*timeout),
		client.WithRetries(*retries, 50*time.Millisecond))
	defer c.Close()
	ctx := context.Background()

	var totalJobs, totalRecs int
	start := time.Now()
	for round := 0; round < *requests; round++ {
		// Each round's ratings go out as one batch — the wire path real
		// deployments amortize per-request overhead with.
		ratings := make([]hyrec.Rating, *users)
		for u := 0; u < *users; u++ {
			ratings[u] = hyrec.Rating{
				User:  hyrec.UserID(u),
				Item:  hyrec.ItemID(rng.Intn(*items)),
				Liked: rng.Float64() < 0.7,
			}
		}
		if err := c.RateBatch(ctx, ratings); err != nil {
			return fmt.Errorf("rate batch: %w", err)
		}
		for u := 0; u < *users; u++ {
			job, err := c.Job(ctx, hyrec.UserID(u))
			if err != nil {
				return fmt.Errorf("request job: %w", err)
			}
			res, timing := w.Execute(job)
			recs, err := c.ApplyResult(ctx, res)
			if err != nil {
				return fmt.Errorf("post result: %w", err)
			}
			totalJobs++
			totalRecs += len(recs)
			if *verbose {
				fmt.Printf("u%d: %d candidates → %d neighbors, %d recs in %v\n",
					u, len(job.Candidates), len(res.Neighbors), len(recs), timing.Total)
			}
		}
	}
	fmt.Printf("executed %d jobs (%d recommendations) in %v\n", totalJobs, totalRecs, time.Since(start))
	return nil
}
