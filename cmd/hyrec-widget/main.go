// Command hyrec-widget simulates one or more browser widgets against a
// running hyrec-server: each simulated user rates random items, requests a
// personalization job from /online, executes KNN selection and item
// recommendation locally, and posts the result to /neighbors — the full
// client loop of Section 3.2.
//
// Usage:
//
//	hyrec-widget -server http://localhost:8080 -users 50 -requests 20
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"hyrec"
	"hyrec/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hyrec-widget", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://localhost:8080", "hyrec-server base URL")
		users    = fs.Int("users", 20, "number of simulated users")
		requests = fs.Int("requests", 10, "requests per user")
		items    = fs.Int("items", 500, "item-ID space")
		seed     = fs.Int64("seed", 1, "randomness seed")
		phone    = fs.Bool("smartphone", false, "simulate a smartphone device")
		workers  = fs.Int("workers", 1, "parallel web-worker count inside each widget")
		jaccard  = fs.Bool("jaccard", false, "use Jaccard similarity instead of cosine")
		verbose  = fs.Bool("v", false, "log every interaction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []hyrec.WidgetOption{}
	if *phone {
		opts = append(opts, hyrec.WithDevice(hyrec.Smartphone()))
	}
	if *workers > 1 {
		opts = append(opts, hyrec.WithWorkers(*workers))
	}
	if *jaccard {
		opts = append(opts, hyrec.WithSimilarity(hyrec.Jaccard{}))
	}
	w := hyrec.NewWidget(opts...)
	rng := rand.New(rand.NewSource(*seed))
	client := &http.Client{
		Transport: &http.Transport{DisableCompression: true},
		Timeout:   30 * time.Second,
	}

	var totalJobs, totalRecs int
	start := time.Now()
	for round := 0; round < *requests; round++ {
		for u := 0; u < *users; u++ {
			item := rng.Intn(*items)
			liked := rng.Float64() < 0.7
			url := fmt.Sprintf("%s/online?uid=%d&item=%d&liked=%t", *server, u, item, liked)
			resp, err := client.Get(url)
			if err != nil {
				return fmt.Errorf("request job: %w", err)
			}
			gz, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("read job: %w", err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("server returned %d: %s", resp.StatusCode, gz)
			}
			res, timing, err := w.ExecutePayload(gz)
			if err != nil {
				return fmt.Errorf("execute job: %w", err)
			}
			body, err := json.Marshal(res)
			if err != nil {
				return fmt.Errorf("marshal result: %w", err)
			}
			post, err := client.Post(*server+"/neighbors", "application/json", bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("post result: %w", err)
			}
			io.Copy(io.Discard, post.Body)
			post.Body.Close()
			totalJobs++
			totalRecs += len(res.Recommendations)
			if *verbose {
				fmt.Printf("u%d: job %dB → %d neighbors, %d recs in %v\n",
					u, len(gz), len(res.Neighbors), len(res.Recommendations), timing.Total)
			}
			_ = core.UserID(u) // document the uid domain
		}
	}
	fmt.Printf("executed %d jobs (%d recommendations) in %v\n", totalJobs, totalRecs, time.Since(start))
	return nil
}
