package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hyrec"
	"hyrec/internal/widget"
)

var tctx = context.Background()

func newTestServer(t *testing.T) (*hyrec.Engine, *httptest.Server) {
	t.Helper()
	cfg := hyrec.DefaultConfig()
	cfg.K = 3
	eng := hyrec.NewEngine(cfg)
	srv := hyrec.NewServiceServer(eng, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return eng, ts
}

// TestClientIsService pins the drop-in property: a remote client
// satisfies the same interface the in-process engines do.
func TestClientIsService(t *testing.T) {
	var _ hyrec.Service = (*Client)(nil)
}

// TestClientFullLoop runs the complete widget protocol through the typed
// client: batch rate, job (gzip-negotiated), widget execution, result,
// recommendations, neighbors.
func TestClientFullLoop(t *testing.T) {
	_, ts := newTestServer(t)
	c := New(ts.URL)
	defer c.Close()

	var ratings []hyrec.Rating
	for u := hyrec.UserID(1); u <= 10; u++ {
		ratings = append(ratings,
			hyrec.Rating{User: u, Item: hyrec.ItemID(u % 3), Liked: true},
			hyrec.Rating{User: u, Item: 100, Liked: true})
	}
	if err := c.RateBatch(tctx, ratings); err != nil {
		t.Fatal(err)
	}

	w := widget.New()
	gotRecs := false
	for round := 0; round < 3; round++ {
		for u := hyrec.UserID(1); u <= 10; u++ {
			job, err := c.Job(tctx, u)
			if err != nil {
				t.Fatalf("job(%d): %v", u, err)
			}
			res, _ := w.Execute(job)
			recs, err := c.ApplyResult(tctx, res)
			if err != nil {
				t.Fatalf("apply(%d): %v", u, err)
			}
			if len(recs) > 0 {
				gotRecs = true
			}
		}
	}
	if !gotRecs {
		t.Fatal("no recommendations after three client rounds")
	}

	sawHood := false
	for u := hyrec.UserID(1); u <= 10; u++ {
		hood, err := c.Neighbors(tctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if len(hood) > 0 {
			sawHood = true
		}
		if _, err := c.Recommendations(tctx, u, 5); err != nil {
			t.Fatal(err)
		}
	}
	if !sawHood {
		t.Fatal("no neighborhoods visible through the client")
	}
}

// TestClientBatching verifies buffered Rate calls reach the server as
// batches: a size-triggered flush, then a Flush-forced tail.
func TestClientBatching(t *testing.T) {
	eng, ts := newTestServer(t)
	c := New(ts.URL, WithBatch(4, time.Hour)) // timer never fires in-test
	defer c.Close()

	for i := 0; i < 6; i++ {
		if err := c.Rate(tctx, hyrec.UserID(i+1), 7, true); err != nil {
			t.Fatal(err)
		}
	}
	// 4 flushed by size; 2 still buffered.
	if got := eng.Profiles().Len(); got != 4 {
		t.Fatalf("after size flush: %d users on server, want 4", got)
	}
	if err := c.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	if got := eng.Profiles().Len(); got != 6 {
		t.Fatalf("after Flush: %d users on server, want 6", got)
	}
}

// TestClientCloseFlushes verifies Close drains the buffer.
func TestClientCloseFlushes(t *testing.T) {
	eng, ts := newTestServer(t)
	c := New(ts.URL, WithBatch(100, time.Hour))
	for i := 0; i < 5; i++ {
		if err := c.Rate(tctx, hyrec.UserID(i+1), 7, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Profiles().Len(); got != 5 {
		t.Fatalf("after Close: %d users on server, want 5", got)
	}
	// Close is idempotent; Rate after Close fails.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rate(tctx, 9, 9, true); err == nil {
		t.Fatal("Rate after Close succeeded")
	}
}

// TestClientRetries verifies transient 5xx responses are retried with
// backoff until the server recovers.
func TestClientRetries(t *testing.T) {
	var calls atomic.Int32
	eng := hyrec.NewEngine(hyrec.DefaultConfig())
	srv := hyrec.NewServiceServer(eng, 0)
	inner := srv.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()
	defer srv.Close()

	c := New(flaky.URL, WithRetries(3, time.Millisecond))
	defer c.Close()
	if err := c.Rate(tctx, 1, 2, true); err != nil {
		t.Fatalf("retried rate failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if !eng.KnownUser(1) {
		t.Fatal("rating did not land after retries")
	}

	// With retries exhausted the typed error surfaces.
	calls.Store(-100)
	err := c.Rate(tctx, 2, 2, true)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError 502", err)
	}
}

// TestClientErrorMapping verifies envelope codes map onto the Service
// sentinels via errors.Is.
func TestClientErrorMapping(t *testing.T) {
	eng, ts := newTestServer(t)
	c := New(ts.URL)
	defer c.Close()

	if err := c.Rate(tctx, 1, 1, true); err != nil {
		t.Fatal(err)
	}
	job, err := c.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := widget.New().Execute(job)
	eng.RotateAnonymizer()
	eng.RotateAnonymizer()
	_, err = c.ApplyResult(tctx, res)
	if !errors.Is(err, hyrec.ErrStaleEpoch) {
		t.Fatalf("stale result error = %v, want errors.Is(_, ErrStaleEpoch)", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone {
		t.Fatalf("stale result error = %v, want APIError 410", err)
	}
}

// TestClientContextDeadline verifies an expired context fails fast
// without hitting the server.
// TestClientStaleEpochEndToEnd drives the ErrStaleEpoch path through
// the full /v1 envelope: a widget result minted two anonymiser epochs
// ago is rejected with the typed error (the client maps the wire code
// onto the sentinel), and a fresh job for the same user then succeeds.
func TestClientStaleEpochEndToEnd(t *testing.T) {
	eng, ts := newTestServer(t)
	c := New(ts.URL)
	defer c.Close()

	for u := hyrec.UserID(1); u <= 5; u++ {
		if err := c.Rate(tctx, u, hyrec.ItemID(u%3), true); err != nil {
			t.Fatal(err)
		}
	}
	w := widget.New()
	staleJob, err := c.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	staleRes, _ := w.Execute(staleJob)

	// Two rotations: the job's epoch is now neither current nor previous,
	// so its pseudonyms no longer resolve.
	eng.RotateAnonymizer()
	eng.RotateAnonymizer()

	_, err = c.ApplyResult(tctx, staleRes)
	if err == nil {
		t.Fatal("stale-epoch result accepted")
	}
	if !errors.Is(err, hyrec.ErrStaleEpoch) {
		t.Fatalf("errors.Is(err, ErrStaleEpoch) = false for %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 410 {
		t.Fatalf("want APIError with 410 Gone, got %v", err)
	}

	// Recovery: a fresh job carries the new epoch and folds in cleanly.
	freshJob, err := c.Job(tctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if freshJob.Epoch == staleJob.Epoch {
		t.Fatal("rotation did not advance the job epoch")
	}
	freshRes, _ := w.Execute(freshJob)
	if _, err := c.ApplyResult(tctx, freshRes); err != nil {
		t.Fatalf("fresh-lease result rejected: %v", err)
	}
	if hood, err := c.Neighbors(tctx, 1); err != nil || len(hood) == 0 {
		t.Fatalf("no neighborhood after recovery: %v %v", hood, err)
	}
}

func TestClientContextDeadline(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(5, time.Second))
	defer c.Close()

	ctx, cancel := context.WithCancel(tctx)
	cancel()
	if err := c.RateBatch(ctx, []hyrec.Rating{{User: 1, Item: 1, Liked: true}}); err == nil {
		t.Fatal("cancelled context succeeded")
	}
	if calls.Load() > 1 {
		t.Fatalf("cancelled context still retried %d times", calls.Load())
	}
}

// TestClientMovedRetriesOnceAfterTopologyRefresh: a CodeMoved answer
// makes the client refetch GET /v1/topology and retry the request
// exactly once; a second moved answer surfaces as hyrec.ErrMoved.
func TestClientMovedRetriesOnceAfterTopologyRefresh(t *testing.T) {
	var resultCalls, topoCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/result", func(w http.ResponseWriter, r *http.Request) {
		if resultCalls.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			w.Write([]byte(`{"error":{"code":"moved","message":"user moved"}}`))
			return
		}
		if topoCalls.Load() == 0 {
			t.Error("retry issued before the topology refresh")
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"recs":[7]}`))
	})
	mux.HandleFunc("/v1/topology", func(w http.ResponseWriter, r *http.Request) {
		topoCalls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"partitions":4,"vnodes":64,"migrating":false,"users_moved_total":12}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL)
	defer c.Close()
	recs, err := c.ApplyResult(tctx, &hyrec.Result{UID: 1})
	if err != nil {
		t.Fatalf("moved answer not retried: %v", err)
	}
	if len(recs) != 1 || recs[0] != 7 {
		t.Fatalf("retried result = %v", recs)
	}
	if got := resultCalls.Load(); got != 2 {
		t.Fatalf("result endpoint hit %d times, want 2 (original + one retry)", got)
	}
	if got := topoCalls.Load(); got != 1 {
		t.Fatalf("topology refetched %d times, want 1", got)
	}
	topo := c.CachedTopology()
	if topo == nil || topo.Partitions != 4 {
		t.Fatalf("topology cache not refreshed: %+v", topo)
	}
}

// TestClientMovedSurfacesAfterOneRetry: persistent moved answers stop
// after one retry and map onto hyrec.ErrMoved via errors.Is.
func TestClientMovedSurfacesAfterOneRetry(t *testing.T) {
	var resultCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/result", func(w http.ResponseWriter, r *http.Request) {
		resultCalls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		w.Write([]byte(`{"error":{"code":"moved","message":"still moved"}}`))
	})
	mux.HandleFunc("/v1/topology", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"partitions":2,"migrating":false,"users_moved_total":0}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL)
	defer c.Close()
	_, err := c.ApplyResult(tctx, &hyrec.Result{UID: 1})
	if !errors.Is(err, hyrec.ErrMoved) {
		t.Fatalf("persistent moved = %v, want hyrec.ErrMoved", err)
	}
	if got := resultCalls.Load(); got != 2 {
		t.Fatalf("result endpoint hit %d times, want exactly 2", got)
	}
}

// TestClientTopologyFetch: the explicit Topology call decodes the
// endpoint and scaling through Client.Scale reshapes a live cluster.
func TestClientTopologyFetch(t *testing.T) {
	cfg := hyrec.DefaultConfig()
	cl := hyrec.NewCluster(cfg, 2)
	srv := hyrec.NewServiceServer(cl, 0)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close(); cl.Close() }()

	c := New(ts.URL)
	defer c.Close()
	for u := hyrec.UserID(1); u <= 30; u++ {
		if err := c.Rate(tctx, u, hyrec.ItemID(u), true); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := c.Topology(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Partitions != 2 {
		t.Fatalf("topology = %+v", topo)
	}
	topo, err = c.Scale(tctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Partitions != 4 || topo.Migrating {
		t.Fatalf("post-scale topology = %+v", topo)
	}
	if cl.NumPartitions() != 4 {
		t.Fatalf("cluster not scaled: %d", cl.NumPartitions())
	}
}
