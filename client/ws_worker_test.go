package client

import (
	"context"
	"testing"
	"time"

	"hyrec"
)

// waitQuiet spins until the scheduler drained and every user refreshed,
// or the deadline passes.
func waitQuiet(eng *hyrec.Engine, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if eng.Scheduler().Quiet() && len(eng.Scheduler().Unrefreshed()) == 0 {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestWSWorkerDrainsQueue is the socket counterpart of
// TestWorkerDrainsQueue: jobs are pushed over one WebSocket, computed,
// and the results stream back on the same connection until every user is
// refreshed.
func TestWSWorkerDrainsQueue(t *testing.T) {
	eng, ts := newSchedServer(t, func(cfg *hyrec.Config) {
		cfg.LeaseTTL = time.Minute
	}, 8)
	c := New(ts.URL)
	defer c.Close()

	w := NewWSWorker(c)
	ctx, cancel := context.WithCancel(tctx)
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run(ctx) }()

	if !waitQuiet(eng, 10*time.Second) {
		t.Fatalf("scheduler never drained over the socket: %+v", eng.Scheduler().Stats())
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v on cancellation", err)
	}
	done, abandoned := w.Stats()
	if done != 8 || abandoned != 0 {
		t.Fatalf("worker stats done=%d abandoned=%d, want 8/0", done, abandoned)
	}
	for u := hyrec.UserID(1); u <= 8; u++ {
		if !eng.Scheduler().RefreshedUser(u) {
			t.Fatalf("user %d not refreshed", u)
		}
		hood, err := c.Neighbors(tctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if len(hood) == 0 {
			t.Fatalf("user %d has empty KNN row after socket refresh", u)
		}
	}
}

// TestWSWorkerPoliteAbandonReissues: an abandoning socket worker sends
// ack(done=false) frames and the job is re-issued; a steady socket
// worker then completes it.
func TestWSWorkerPoliteAbandonReissues(t *testing.T) {
	eng, ts := newSchedServer(t, func(cfg *hyrec.Config) {
		// A push in flight when the churny session is cancelled leaves a
		// dangling lease; a short TTL with retries lets it re-issue to the
		// steady worker instead of stalling the test.
		cfg.LeaseTTL = 500 * time.Millisecond
		cfg.LeaseRetries = 5
	}, 1)
	c := New(ts.URL)
	defer c.Close()

	churny := NewWSWorker(c, WithAbandonProb(1, 1))
	ctx, cancel := context.WithCancel(tctx)
	runErr := make(chan error, 1)
	go func() { runErr <- churny.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ab := churny.Stats(); ab >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("churny socket worker never abandoned: sched %+v", eng.Scheduler().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if st := eng.Scheduler().Stats(); st.Abandoned == 0 {
		t.Fatalf("scheduler saw no abandon: %+v", st)
	}

	steady := NewWSWorker(c)
	sctx, scancel := context.WithCancel(tctx)
	defer scancel()
	go steady.Run(sctx)
	if !waitQuiet(eng, 10*time.Second) {
		t.Fatalf("re-issued job never completed: %+v", eng.Scheduler().Stats())
	}
	if done, _ := steady.Stats(); done == 0 {
		t.Fatal("steady socket worker completed nothing")
	}
}

// TestWSWorkerSilentChurnAbsorbedByFallback: the crash model over the
// socket — the worker receives pushes and vanishes silently; leases
// expire and the server-side fallback pool refreshes the rows.
func TestWSWorkerSilentChurnAbsorbedByFallback(t *testing.T) {
	eng, ts := newSchedServer(t, func(cfg *hyrec.Config) {
		cfg.LeaseTTL = 25 * time.Millisecond
		cfg.LeaseRetries = -1 // first expiry → fallback
		cfg.FallbackWorkers = 2
	}, 3)
	c := New(ts.URL)
	defer c.Close()

	vanish := NewWSWorker(c, WithAbandonProb(1, 1), WithSilentAbandon())
	ctx, cancel := context.WithCancel(tctx)
	defer cancel()
	go vanish.Run(ctx)

	if !waitQuiet(eng, 10*time.Second) {
		t.Fatalf("fallback never converged: %+v", eng.Scheduler().Stats())
	}
	cancel()
	st := eng.Scheduler().Stats()
	if st.Expired == 0 || st.FallbackRuns == 0 {
		t.Fatalf("fallback never absorbed the churned leases: %+v", st)
	}
	if _, ab := vanish.Stats(); ab == 0 {
		t.Fatal("vanishing worker abandoned nothing")
	}
}

// TestWSWorkerRunStopsOnCancel: Run redials as needed and ends cleanly
// on context cancellation.
func TestWSWorkerRunStopsOnCancel(t *testing.T) {
	_, ts := newSchedServer(t, nil, 2)
	c := New(ts.URL)
	defer c.Close()

	w := NewWSWorker(c)
	ctx, cancel := context.WithTimeout(tctx, 300*time.Millisecond)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("Run = %v, want nil on cancellation", err)
	}
}
