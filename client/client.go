// Package client is the typed Go client of HyRec's versioned wire
// protocol (/v1, see internal/wire). It implements hyrec.Service, so
// code written against the interface — replay harnesses, load
// generators, applications — runs unchanged against a remote server:
//
//	c := client.New("http://localhost:8080",
//		client.WithRetries(3, 50*time.Millisecond),
//		client.WithBatch(128, 100*time.Millisecond))
//	defer c.Close()
//
//	c.Rate(ctx, 42, 7, true)          // buffered, flushed as a batch
//	job, _ := c.Job(ctx, 42)          // GET /v1/job (gzip-negotiated)
//	res, _ := widget.Execute(job)
//	recs, _ := c.ApplyResult(ctx, res)
//
// The client reuses connections (one shared Transport with idle
// pooling), batches ratings to amortize per-request overhead, retries
// transient failures with exponential backoff, and honours context
// deadlines on every request.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/wire"
)

// maxResponseBytes caps how much of any response the client will read —
// far above any legitimate payload, purely a runaway-peer guard.
const maxResponseBytes = 64 << 20

// Client speaks the /v1 protocol to one HyRec server. Safe for
// concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	ownsHC  bool
	retries int
	backoff time.Duration
	timeout time.Duration
	headers map[string]string

	// Rating batcher (enabled by WithBatch).
	batchSize  int
	flushEvery time.Duration

	mu       sync.Mutex
	buf      []core.Rating
	flushErr error // first asynchronous flush failure, surfaced on next call
	closed   bool
	stopCh   chan struct{}
	wg       sync.WaitGroup

	// topo caches the last topology fetched from GET /v1/topology —
	// refreshed automatically when the server answers CodeMoved.
	topoMu sync.Mutex
	topo   *wire.Topology

	// Framed transport (WithFramed, see framed.go): the persistent
	// multiplexed binary connection the hot wire paths prefer.
	frameAddr      string
	frameMu        sync.Mutex
	framed         *framedConn
	frameDownUntil time.Time
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection
// pool, TLS, proxies). The caller keeps ownership: Close will not close
// its idle connections.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc; c.ownsHC = false }
}

// WithTimeout sets the per-request deadline applied when the caller's
// context has none (default 30s; 0 disables).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithHeader attaches a fixed header to every request — e.g. the
// forwarded marker a node sets on proxied traffic (server.ForwardedHeader)
// so the receiving node rejects instead of proxying again.
func WithHeader(key, value string) Option {
	return func(c *Client) {
		if c.headers == nil {
			c.headers = make(map[string]string)
		}
		c.headers[key] = value
	}
}

// WithRetries makes transient failures (network errors, HTTP 5xx) retry
// up to n additional attempts with exponential backoff starting at
// backoff. Contexts are honoured while sleeping.
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.retries = n
		c.backoff = backoff
	}
}

// WithBatch buffers Rate calls and flushes them as one POST /v1/rate
// when size ratings accumulate or flushEvery elapses, whichever is
// first — the amortization path that makes per-rating overhead
// negligible. Flush and Close force pending ratings out. size is capped
// at the protocol's MaxBatchRatings.
func WithBatch(size int, flushEvery time.Duration) Option {
	return func(c *Client) {
		if size < 1 {
			size = 1
		}
		if size > wire.MaxBatchRatings {
			size = wire.MaxBatchRatings
		}
		c.batchSize = size
		c.flushEvery = flushEvery
	}
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
				// The client negotiates gzip explicitly so it can reuse
				// wire.Decompress and meter exactly what crossed the wire.
				DisableCompression: true,
			},
		},
		ownsHC:  true,
		timeout: 30 * time.Second,
		stopCh:  make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.batchSize > 0 && c.flushEvery > 0 {
		c.wg.Add(1)
		go c.flushLoop()
	}
	return c
}

// Compile-time guarantee: a remote client is a drop-in Service, and a
// lease-aware one — Worker drives the scheduler through these.
var (
	_ hyrec.Service    = (*Client)(nil)
	_ hyrec.JobSource  = (*Client)(nil)
	_ hyrec.LeaseAcker = (*Client)(nil)
)

// APIError is a non-2xx response carrying the server's typed error
// envelope. errors.Is maps the protocol codes onto the package-level
// sentinels (hyrec.ErrStaleEpoch, hyrec.ErrUnknownUser).
type APIError struct {
	Status  int    // HTTP status code
	Code    string // machine code from the envelope (wire.Code*)
	Message string
	// Primary is the owning node's address on not_primary answers (empty
	// otherwise) — the re-target hint of multi-node deployments.
	Primary string
	// RetryAfter is the server's backoff hint on overloaded answers
	// (zero otherwise). The client honors it — capped — before its
	// single overload retry; callers shedding work themselves should
	// wait at least this long too.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("hyrec client: server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// Is maps envelope codes onto the Service sentinel errors.
func (e *APIError) Is(target error) bool {
	switch target {
	case hyrec.ErrStaleEpoch:
		return e.Code == wire.CodeStaleEpoch
	case hyrec.ErrUnknownUser:
		return e.Code == wire.CodeUnknownUser
	case hyrec.ErrUnknownLease:
		return e.Code == wire.CodeUnknownLease
	case hyrec.ErrMoved:
		return e.Code == wire.CodeMoved
	case hyrec.ErrNotPrimary:
		return e.Code == wire.CodeNotPrimary
	case hyrec.ErrOverloaded:
		return e.Code == wire.CodeOverloaded
	}
	return false
}

// Rate implements hyrec.Service. With batching enabled the rating is
// buffered and the call returns once it is enqueued (flushing inline
// when the buffer fills); otherwise it is a one-element RateBatch.
func (c *Client) Rate(ctx context.Context, u core.UserID, item core.ItemID, liked bool) error {
	r := core.Rating{User: u, Item: item, Liked: liked}
	if c.batchSize <= 0 {
		return c.RateBatch(ctx, []core.Rating{r})
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("hyrec client: closed")
	}
	// Buffer first, then surface any asynchronous flush failure: the
	// returned error reports the *previous* batch — this rating stays
	// queued and goes out with the next flush.
	c.buf = append(c.buf, r)
	var pending []core.Rating
	if len(c.buf) >= c.batchSize {
		pending = c.buf
		c.buf = nil
	}
	err := c.flushErr
	c.flushErr = nil
	c.mu.Unlock()
	if pending != nil {
		if ferr := c.RateBatch(ctx, pending); err == nil {
			err = ferr
		}
	}
	return err
}

// Flush sends any buffered ratings now.
func (c *Client) Flush(ctx context.Context) error {
	c.mu.Lock()
	pending := c.buf
	c.buf = nil
	err := c.flushErr
	c.flushErr = nil
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if len(pending) == 0 {
		return nil
	}
	return c.RateBatch(ctx, pending)
}

func (c *Client) flushLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.flushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.mu.Lock()
			pending := c.buf
			c.buf = nil
			c.mu.Unlock()
			if len(pending) == 0 {
				continue
			}
			if err := c.RateBatch(context.Background(), pending); err != nil {
				c.mu.Lock()
				if c.flushErr == nil {
					c.flushErr = err
				}
				c.mu.Unlock()
			}
		case <-c.stopCh:
			return
		}
	}
}

// RateBatch implements hyrec.Service: one POST /v1/rate for the whole
// slice. Batches beyond the protocol limit are split transparently.
func (c *Client) RateBatch(ctx context.Context, ratings []core.Rating) error {
	for len(ratings) > 0 {
		n := len(ratings)
		if n > wire.MaxBatchRatings {
			n = wire.MaxBatchRatings
		}
		if handled, err := c.framedRateBatch(ctx, ratings[:n]); handled {
			if err != nil {
				return err
			}
			ratings = ratings[n:]
			continue
		}
		req := wire.RateRequest{Ratings: make([]wire.RatingMsg, n)}
		for i, r := range ratings[:n] {
			req.Ratings[i] = wire.RatingMsg{UID: uint32(r.User), Item: uint32(r.Item), Liked: r.Liked}
		}
		body, err := json.Marshal(&req)
		if err != nil {
			return fmt.Errorf("hyrec client: marshal batch: %w", err)
		}
		var resp wire.RateResponse
		if err := c.do(ctx, http.MethodPost, "/v1/rate", body, &resp); err != nil {
			return err
		}
		ratings = ratings[n:]
	}
	return nil
}

// Job implements hyrec.Service: GET /v1/job with gzip negotiation (or
// one TJobGet exchange when the framed transport is up — the payload
// bytes are identical either way).
func (c *Client) Job(ctx context.Context, u core.UserID) (*wire.Job, error) {
	raw, err := c.JobRaw(ctx, u)
	if err != nil {
		return nil, err
	}
	return wire.DecodeJob(raw)
}

// JobRaw fetches u's job payload as the exact JSON bytes the server
// serialized (after transport decompression) — the proxy path of a
// multi-node deployment, where re-encoding would break the byte-identity
// the payload cache guarantees.
func (c *Client) JobRaw(ctx context.Context, u core.UserID) ([]byte, error) {
	if raw, handled, err := c.framedJobRaw(ctx, u); handled {
		return raw, err
	}
	return c.getRaw(ctx, "/v1/job?uid="+strconv.FormatUint(uint64(u), 10))
}

// NextJob implements hyrec.JobSource remotely: GET /v1/job?worker=1,
// long-polling the server's staleness queue until ctx is done (the
// server caps each poll; the loop re-issues requests until then). It
// returns (nil, nil) when ctx expires with no work — matching the
// in-process contract.
func (c *Client) NextJob(ctx context.Context) (*wire.Job, error) {
	// rttMargin is shaved off the server-side wait so a job dispatched at
	// the very end of the window still gets its response back inside the
	// client deadline (a lost response would burn the lease until expiry).
	// Budgets shorter than twice the margin long-poll for half their
	// remainder instead, so short-poll callers still park server-side.
	const rttMargin = 300 * time.Millisecond
	for {
		wait := 15 * time.Second
		// A deadline-less ctx still gets the client-level timeout inside
		// roundTrip; cap the server-side wait under it too, or the
		// request would be cancelled mid-poll and a job dispatched in
		// the gap would burn its lease.
		if c.timeout > 0 && c.timeout-rttMargin < wait {
			wait = c.timeout - rttMargin
			if wait < c.timeout/2 {
				wait = c.timeout / 2
			}
		}
		if dl, ok := ctx.Deadline(); ok {
			remain := time.Until(dl)
			if remain <= 0 {
				return nil, nil
			}
			w := remain - rttMargin
			if w < remain/2 {
				w = remain / 2
			}
			if w < wait {
				wait = w
			}
		}
		if job, handled, err := c.framedNextJob(ctx, wait); handled {
			if err != nil {
				if ctx.Err() != nil {
					return nil, nil
				}
				return nil, err
			}
			if job == nil {
				// The queue stayed empty for this framed poll.
				if ctx.Err() != nil || !c.hasDeadline(ctx) {
					return nil, nil
				}
				continue
			}
			return job, nil
		}
		raw, err := c.getRaw(ctx, "/v1/job?worker=1&wait="+wait.Truncate(time.Millisecond).String())
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil
			}
			return nil, err
		}
		if len(raw) == 0 {
			// 204: the queue stayed empty for this poll.
			if ctx.Err() != nil || !c.hasDeadline(ctx) {
				return nil, nil
			}
			continue
		}
		return wire.DecodeJob(raw)
	}
}

// hasDeadline reports whether ctx bounds the long-poll loop; without one
// NextJob returns after a single server-side poll rather than spinning
// forever.
func (c *Client) hasDeadline(ctx context.Context) bool {
	_, ok := ctx.Deadline()
	return ok
}

// Ack implements hyrec.LeaseAcker remotely: POST /v1/ack.
func (c *Client) Ack(ctx context.Context, lease uint64, done bool) error {
	if handled, err := c.framedAck(ctx, lease, done); handled {
		return err
	}
	body, err := json.Marshal(&wire.AckRequest{Lease: lease, Done: done})
	if err != nil {
		return fmt.Errorf("hyrec client: marshal ack: %w", err)
	}
	var out wire.AckResponse
	return c.do(ctx, http.MethodPost, "/v1/ack", body, &out)
}

// ApplyResult implements hyrec.Service: POST /v1/result, returning the
// recommendations the server resolved.
func (c *Client) ApplyResult(ctx context.Context, res *wire.Result) ([]core.ItemID, error) {
	if recs, handled, err := c.framedApplyResult(ctx, res); handled {
		return recs, err
	}
	body, err := wire.EncodeResult(res)
	if err != nil {
		return nil, fmt.Errorf("hyrec client: marshal result: %w", err)
	}
	var out wire.RecsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/result", body, &out); err != nil {
		return nil, err
	}
	recs := make([]core.ItemID, len(out.Recs))
	for i, it := range out.Recs {
		recs[i] = core.ItemID(it)
	}
	return recs, nil
}

// Recommendations implements hyrec.Service: GET /v1/recs.
func (c *Client) Recommendations(ctx context.Context, u core.UserID, n int) ([]core.ItemID, error) {
	path := "/v1/recs?uid=" + strconv.FormatUint(uint64(u), 10)
	if n > 0 {
		path += "&n=" + strconv.Itoa(n)
	}
	var out wire.RecsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	recs := make([]core.ItemID, len(out.Recs))
	for i, it := range out.Recs {
		recs[i] = core.ItemID(it)
	}
	return recs, nil
}

// Topology fetches the server's current topology (GET /v1/topology):
// partition count, ring parameter, and whether a live resharding is in
// progress. The result is also cached for CachedTopology.
func (c *Client) Topology(ctx context.Context) (*wire.Topology, error) {
	var out wire.Topology
	if err := c.do(ctx, http.MethodGet, "/v1/topology", nil, &out); err != nil {
		return nil, err
	}
	c.topoMu.Lock()
	c.topo = &out
	c.topoMu.Unlock()
	return &out, nil
}

// Scale asks the server to reshape to the given partition count
// (POST /v1/topology) and returns the resulting topology once the
// migration has completed — the admin client of a live resharding.
func (c *Client) Scale(ctx context.Context, partitions int) (*wire.Topology, error) {
	body, err := json.Marshal(&wire.ScaleRequest{Partitions: partitions})
	if err != nil {
		return nil, fmt.Errorf("hyrec client: marshal scale: %w", err)
	}
	var out wire.Topology
	if err := c.do(ctx, http.MethodPost, "/v1/topology", body, &out); err != nil {
		return nil, err
	}
	c.topoMu.Lock()
	c.topo = &out
	c.topoMu.Unlock()
	return &out, nil
}

// CachedTopology returns the last topology observed (nil before any
// fetch). The cache refreshes on explicit Topology calls and whenever
// the server answers CodeMoved.
func (c *Client) CachedTopology() *wire.Topology {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	return c.topo
}

// Replicate ships one replication batch to the node at the other end
// (POST /v1/replicate) — the node-plane call a primary partition uses to
// keep its replica mirror current.
func (c *Client) Replicate(ctx context.Context, b *wire.ReplBatch) (*wire.ReplAck, error) {
	if ack, handled, err := c.framedReplicate(ctx, b); handled {
		return ack, err
	}
	body, err := wire.EncodeReplBatch(b)
	if err != nil {
		return nil, fmt.Errorf("hyrec client: marshal repl batch: %w", err)
	}
	var out wire.ReplAck
	if err := c.do(ctx, http.MethodPost, "/v1/replicate", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PushNodeMap publishes a node map to the node at the other end
// (POST /v1/nodes) — the failover coordinator's re-publication call.
func (c *Client) PushNodeMap(ctx context.Context, m *wire.NodeMap) error {
	body, err := wire.EncodeNodeMap(m)
	if err != nil {
		return fmt.Errorf("hyrec client: marshal node map: %w", err)
	}
	var out wire.AckResponse
	return c.do(ctx, http.MethodPost, "/v1/nodes", body, &out)
}

// Neighbors implements hyrec.Service: GET /v1/neighbors.
func (c *Client) Neighbors(ctx context.Context, u core.UserID) ([]core.UserID, error) {
	var out wire.NeighborsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/neighbors?uid="+strconv.FormatUint(uint64(u), 10), nil, &out); err != nil {
		return nil, err
	}
	hood := make([]core.UserID, len(out.Neighbors))
	for i, v := range out.Neighbors {
		hood[i] = core.UserID(v)
	}
	return hood, nil
}

// Close flushes buffered ratings, stops the flush loop and releases
// idle connections. Safe to call multiple times.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pending := c.buf
	c.buf = nil
	err := c.flushErr
	c.flushErr = nil
	close(c.stopCh)
	c.mu.Unlock()
	c.wg.Wait()
	if len(pending) > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if ferr := c.RateBatch(ctx, pending); err == nil {
			err = ferr
		}
	}
	c.closeFramed()
	if c.ownsHC {
		c.hc.CloseIdleConnections()
	}
	return err
}

// ---- transport plumbing ----

// do issues one JSON request/response exchange with retries, decoding a
// success body into out (ignored when out is nil).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	raw, err := c.roundTrip(ctx, method, path, body, false)
	if err != nil {
		return err
	}
	if out == nil || len(raw) == 0 {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("hyrec client: decode %s response: %w", path, err)
	}
	return nil
}

// getRaw issues a gzip-negotiated GET and returns the decompressed body.
func (c *Client) getRaw(ctx context.Context, path string) ([]byte, error) {
	return c.roundTrip(ctx, http.MethodGet, path, nil, true)
}

// roundTrip is the retrying core. Attempts are considered retryable on
// network errors and 5xx responses; 4xx envelopes surface immediately.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, negotiateGzip bool) ([]byte, error) {
	if c.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	backoff := c.backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	movedRetried := false
	overloadRetried := false
	base := c.base
	for attempt := 0; ; attempt++ {
		raw, retryable, err := c.attemptAt(ctx, base, method, path, body, negotiateGzip)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		// CodeMoved / CodeNotPrimary: the user's state migrated to a
		// different partition — or the node answering no longer serves it
		// as primary — mid-flight. Refetch the topology (so routing
		// caches catch up) and retry exactly once; a not_primary envelope
		// naming the primary's address re-targets the retry directly. A
		// second such answer means the request is a pre-change straggler
		// and surfaces as-is.
		var apiErr *APIError
		if !movedRetried && ctx.Err() == nil && errors.As(err, &apiErr) &&
			(apiErr.Code == wire.CodeMoved || apiErr.Code == wire.CodeNotPrimary) &&
			!strings.HasSuffix(path, "/v1/topology") {
			movedRetried = true
			if apiErr.Primary != "" {
				base = strings.TrimRight(apiErr.Primary, "/")
			}
			c.refreshTopology(ctx)
			attempt-- // the moved retry does not consume the transient budget
			continue
		}
		// CodeOverloaded: the server's admission gate shed the request.
		// Honor the envelope's retry-after hint (capped) and retry exactly
		// once — hammering a shedding server defeats the gate's purpose,
		// so a second overloaded answer surfaces as-is.
		if !overloadRetried && ctx.Err() == nil && errors.As(err, &apiErr) &&
			apiErr.Code == wire.CodeOverloaded {
			overloadRetried = true
			if waitOverload(ctx, apiErr.RetryAfter) {
				attempt-- // like the moved retry: outside the transient budget
				continue
			}
			return nil, lastErr
		}
		if !retryable || attempt >= c.retries || ctx.Err() != nil {
			return nil, lastErr
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff << attempt):
		}
	}
}

func (c *Client) attempt(ctx context.Context, method, path string, body []byte, negotiateGzip bool) (raw []byte, retryable bool, err error) {
	return c.attemptAt(ctx, c.base, method, path, body, negotiateGzip)
}

func (c *Client) attemptAt(ctx context.Context, base, method, path string, body []byte, negotiateGzip bool) (raw []byte, retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return nil, false, fmt.Errorf("hyrec client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if negotiateGzip {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("hyrec client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	// Responses are not bounded by the request-body cap (a large
	// candidate set can legitimately exceed it); the generous limit
	// below only guards against a runaway peer, and overflowing it is an
	// explicit error rather than a silent truncation.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, true, fmt.Errorf("hyrec client: read %s response: %w", path, err)
	}
	if len(data) > maxResponseBytes {
		return nil, false, fmt.Errorf("hyrec client: %s response exceeds %d bytes", path, maxResponseBytes)
	}
	if resp.StatusCode >= 400 {
		return nil, resp.StatusCode >= 500, decodeAPIError(resp.StatusCode, data)
	}
	if strings.Contains(resp.Header.Get("Content-Encoding"), "gzip") {
		plain, err := wire.Decompress(data)
		if err != nil {
			return nil, false, fmt.Errorf("hyrec client: decompress %s: %w", path, err)
		}
		data = plain
	}
	return data, false, nil
}

// overloadBackoffCap bounds how long the client honors a server's
// retry-after hint before its single overload retry — a hostile or
// misconfigured hint cannot park a caller for minutes. Variable for
// tests.
var overloadBackoffCap = 2 * time.Second

// waitOverload sleeps the server's retry-after hint (the default when
// the hint is absent, capped always) before the one overload retry.
// false means ctx expired first and the caller should surface the
// overloaded error instead of retrying.
func waitOverload(ctx context.Context, hint time.Duration) bool {
	if hint <= 0 {
		hint = time.Second
	}
	if hint > overloadBackoffCap {
		hint = overloadBackoffCap
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(hint):
		return true
	}
}

// refreshTopology best-effort-updates the topology cache after a moved
// answer; failures are swallowed (the retry surfaces the real error).
func (c *Client) refreshTopology(ctx context.Context) {
	raw, _, err := c.attempt(ctx, http.MethodGet, "/v1/topology", nil, false)
	if err != nil {
		return
	}
	var t wire.Topology
	if json.Unmarshal(raw, &t) == nil {
		c.topoMu.Lock()
		c.topo = &t
		c.topoMu.Unlock()
	}
}

func decodeAPIError(status int, body []byte) error {
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &APIError{
			Status: status, Code: env.Error.Code, Message: env.Error.Message, Primary: env.Error.Primary,
			RetryAfter: time.Duration(env.Error.RetryAfterMS) * time.Millisecond,
		}
	}
	// Legacy plain-text error (or proxy junk): keep the raw text.
	return &APIError{Status: status, Code: wire.CodeInternal, Message: strings.TrimSpace(string(body))}
}
