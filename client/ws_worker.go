package client

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hyrec/internal/widget"
	"hyrec/internal/wire"
	"hyrec/internal/ws"
)

// WSWorker is the push-based sibling of Worker: instead of long-polling
// GET /v1/job?worker=1, it holds one WebSocket to GET /v1/worker/ws,
// grants the server a job credit whenever it is ready to compute, and
// streams results and acks back over the same connection — the
// browser-true transport (a real widget keeps a socket open for the tab
// lifetime). Lease echo and the abandon/silent-abandon churn knobs
// behave exactly as on Worker, so the two are interchangeable in
// harnesses:
//
//	c := client.New("http://localhost:8080")
//	w := client.NewWSWorker(c, client.WithAbandonProb(0.3, 42))
//	go w.Run(ctx) // dials, redials on failure, until cancel()
//
// Like Worker, a WSWorker is NOT safe for concurrent use; run one per
// goroutine, sharing the Client.
type WSWorker struct {
	c  *Client
	w  *widget.Widget
	rw sync.Mutex // guards rng

	abandonProb float64
	silent      bool
	rng         *rand.Rand

	done      atomic.Int64
	abandoned atomic.Int64
}

// NewWSWorker builds a socket worker on c. It accepts the same options
// as NewWorker (WithWorkerWidget, WithAbandonProb, WithSilentAbandon;
// WithPollBudget is meaningless on a push transport and ignored).
func NewWSWorker(c *Client, opts ...WorkerOption) *WSWorker {
	proto := NewWorker(c, opts...)
	return &WSWorker{
		c:           c,
		w:           proto.w,
		abandonProb: proto.abandonProb,
		silent:      proto.silent,
		rng:         proto.rng,
	}
}

// Stats returns how many jobs this worker completed and abandoned.
func (wk *WSWorker) Stats() (done, abandoned int64) {
	return wk.done.Load(), wk.abandoned.Load()
}

func (wk *WSWorker) draw() float64 {
	wk.rw.Lock()
	defer wk.rw.Unlock()
	return wk.rng.Float64()
}

// Dial opens the worker socket (exported for harnesses that drive one
// connection directly; Run manages its own).
func (wk *WSWorker) Dial(ctx context.Context) (*ws.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	return ws.Dial(dctx, wk.c.base+wire.WSWorkerPath, 0)
}

// ServeConn pumps one established socket until it fails, the server
// closes, or ctx is done (which sends the polite close handshake — the
// browser's pagehide). It returns the terminal transport error, nil on a
// clean ctx cancellation.
func (wk *WSWorker) ServeConn(ctx context.Context, conn *ws.Conn) error {
	stop := context.AfterFunc(ctx, func() {
		conn.WriteClose(ws.CloseGoingAway, "worker stopping")
		conn.Close()
	})
	defer stop()
	defer conn.Close()

	// First credit: ready to compute one job.
	if err := wk.send(conn, &wire.WSClientMsg{Want: 1}); err != nil {
		return wk.ctxErr(ctx, err)
	}
	for {
		_, frame, err := conn.ReadMessage()
		if err != nil {
			return wk.ctxErr(ctx, err)
		}
		if wire.IsWSError(frame) {
			// A stale epoch or superseded lease is the scheduler working,
			// not a worker failure (same tolerance as Worker.RunOnce); any
			// other error envelope is likewise non-fatal for the socket.
			continue
		}
		job, err := wire.DecodeJob(frame)
		if err != nil {
			return err
		}
		if wk.abandonProb > 0 && wk.draw() < wk.abandonProb {
			wk.abandoned.Add(1)
			if wk.silent {
				// Churn out: say nothing, let the lease expire server-side,
				// but stay ready for the next push.
				if err := wk.send(conn, &wire.WSClientMsg{Want: 1}); err != nil {
					return wk.ctxErr(ctx, err)
				}
				continue
			}
			if err := wk.send(conn, &wire.WSClientMsg{
				Want: 1,
				Ack:  &wire.AckRequest{Lease: job.Lease, Done: false},
			}); err != nil {
				return wk.ctxErr(ctx, err)
			}
			continue
		}
		res, _ := wk.w.Execute(job)
		// The result echoes the job's lease (widget.Execute copies it), so
		// fold-in completes the lease implicitly; the piggybacked credit
		// asks for the next job in the same frame.
		if err := wk.send(conn, &wire.WSClientMsg{Want: 1, Result: res}); err != nil {
			return wk.ctxErr(ctx, err)
		}
		wk.done.Add(1)
	}
}

// Run dials the worker socket and pumps it until ctx is done, redialing
// with a brief backoff when the connection fails so a flapping server is
// not hammered. It returns nil on a clean context cancellation.
func (wk *WSWorker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		conn, err := wk.Dial(ctx)
		if err == nil {
			err = wk.ServeConn(ctx, conn)
		}
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
}

func (wk *WSWorker) send(conn *ws.Conn, msg *wire.WSClientMsg) error {
	raw, err := wire.EncodeWSClientMsg(msg)
	if err != nil {
		return err
	}
	return conn.WriteMessage(ws.OpText, raw)
}

// ctxErr suppresses the transport error when it was caused by our own
// ctx-driven teardown.
func (wk *WSWorker) ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return nil
	}
	return err
}
