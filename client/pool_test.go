package client

import (
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"hyrec"
)

// countingListener counts accepted connections — each accept is one
// TCP dial the client paid.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// TestClientPoolBoundsDialsUnderConcurrency is the connection-churn
// regression test: N workers hammering one host through the typed
// client must reuse pooled connections, not redial per request. (The
// zero-value http.Transport keeps only 2 idle connections per host,
// which under concurrent load turns almost every request into a fresh
// dial — the client sizes its pool explicitly to avoid that.)
func TestClientPoolBoundsDialsUnderConcurrency(t *testing.T) {
	cfg := hyrec.DefaultConfig()
	cfg.K = 3
	eng := hyrec.NewEngine(cfg)
	srv := hyrec.NewServiceServer(eng, 0)
	ts := httptest.NewUnstartedServer(srv.Handler())
	cl := &countingListener{Listener: ts.Listener}
	ts.Listener = cl
	ts.Start()
	t.Cleanup(func() { ts.Close(); srv.Close(); eng.Close() })

	if err := eng.Rate(tctx, 1, 1, true); err != nil {
		t.Fatal(err)
	}

	c := New(ts.URL)
	defer c.Close()

	const workers = 16
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := c.Recommendations(tctx, 1, 3); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// With a correctly sized pool the dial count is bounded by peak
	// concurrency; churn through a 2-connection pool would push it
	// toward the request count (400).
	if got := cl.accepts.Load(); got > workers*2 {
		t.Fatalf("%d TCP dials for %d requests from %d workers — connection pool is churning",
			got, workers*perWorker, workers)
	}
}
