package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hyrec"
)

var overloadedAnswer = scripted{http.StatusTooManyRequests,
	`{"error":{"code":"overloaded","message":"rating queue full","retry_after_ms":20}}`}

// overloadServer scripts successive /v1/neighbors answers and counts
// hits; a call past the script fails the test (retry-once violated).
func overloadServer(t *testing.T, answers []scripted) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/neighbors", func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) > len(answers) {
			t.Errorf("call %d beyond the script (overload retry-once violated)", n)
			w.WriteHeader(http.StatusTeapot)
			return
		}
		a := answers[n-1]
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(a.status)
		w.Write([]byte(a.body))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestClientOverloadRetriesOnce: an overloaded answer makes the client
// wait out the server's retry_after_ms hint and retry exactly once.
func TestClientOverloadRetriesOnce(t *testing.T) {
	ts, calls := overloadServer(t, []scripted{overloadedAnswer, hoodAnswer})
	c := New(ts.URL)
	defer c.Close()

	start := time.Now()
	hood, err := c.Neighbors(tctx, 1)
	if err != nil {
		t.Fatalf("Neighbors = %v, want success after one backoff retry", err)
	}
	if len(hood) != 2 {
		t.Fatalf("retried neighbors = %v", hood)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("endpoint hit %d times, want exactly 2", got)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("retry after %v, want >= the 20ms hint", elapsed)
	}
}

// TestClientOverloadGivesUpAfterOneRetry: a second overloaded answer
// surfaces as hyrec.ErrOverloaded instead of retrying forever into a
// server that is shedding load.
func TestClientOverloadGivesUpAfterOneRetry(t *testing.T) {
	ts, calls := overloadServer(t, []scripted{overloadedAnswer, overloadedAnswer})
	c := New(ts.URL)
	defer c.Close()

	_, err := c.Neighbors(tctx, 1)
	if !errors.Is(err, hyrec.ErrOverloaded) {
		t.Fatalf("err = %v, want errors.Is(hyrec.ErrOverloaded)", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 20*time.Millisecond {
		t.Fatalf("err = %v, want APIError carrying the 20ms retry hint", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("endpoint hit %d times, want exactly 2", got)
	}
}

// TestClientOverloadBackoffCapped: with no retry_after_ms hint the
// client defaults to a 1s wait, and the wait never exceeds the backoff
// cap however large the server's hint is.
func TestClientOverloadBackoffCapped(t *testing.T) {
	old := overloadBackoffCap
	overloadBackoffCap = 5 * time.Millisecond
	t.Cleanup(func() { overloadBackoffCap = old })

	noHint := scripted{http.StatusTooManyRequests, `{"error":{"code":"overloaded","message":"busy"}}`}
	hugeHint := scripted{http.StatusTooManyRequests, `{"error":{"code":"overloaded","message":"busy","retry_after_ms":3600000}}`}
	for name, first := range map[string]scripted{"no hint": noHint, "huge hint": hugeHint} {
		t.Run(name, func(t *testing.T) {
			ts, calls := overloadServer(t, []scripted{first, hoodAnswer})
			c := New(ts.URL)
			defer c.Close()

			start := time.Now()
			if _, err := c.Neighbors(tctx, 1); err != nil {
				t.Fatalf("Neighbors = %v, want success after one capped backoff", err)
			}
			if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
				t.Fatalf("backoff took %v, want capped near 5ms", elapsed)
			}
			if got := calls.Load(); got != 2 {
				t.Fatalf("endpoint hit %d times, want exactly 2", got)
			}
		})
	}
}
