package client

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"hyrec/internal/core"
	"hyrec/internal/frame"
	"hyrec/internal/wire"
)

// The framed transport upgrade (WithFramed): RateBatch, NextJob, Job,
// Ack, ApplyResult and Replicate ride one persistent multiplexed
// binary connection (internal/frame) instead of per-request JSON/HTTP,
// falling back to the JSON path transparently whenever the framed
// connection cannot be dialed or drops mid-exchange. The JSON path
// stays the source of truth for retries and topology re-targeting:
// moved/not_primary answers on the framed lane are redone over JSON.

// nodeSecretHeader mirrors server.NodeSecretHeader (asserted equal in
// the node package's tests, which import both sides): when the client
// carries the node-plane secret header for its HTTP requests, the
// framed handshake presents the same secret.
const nodeSecretHeader = "X-Hyrec-Node-Secret"

// frameDialTimeout bounds the framed dial + handshake; a dead frame
// listener costs one connect attempt, then the redial backoff gates
// further ones.
const frameDialTimeout = 3 * time.Second

// frameRedialBackoff is how long the client stays on the JSON path
// after a failed framed dial before probing again.
const frameRedialBackoff = 2 * time.Second

// WithFramed upgrades the client's hot wire paths onto one persistent
// multiplexed binary connection to addr (host:port — the server's
// -frame-addr listener). Dial failures and mid-stream drops fall back
// to the JSON /v1 path, so a client stays correct when the framed
// listener is absent, unreachable, or restarting.
func WithFramed(addr string) Option {
	return func(c *Client) { c.frameAddr = addr }
}

// framedConn is one live framed connection: a writer-shared
// frame.Conn plus a demultiplexing reader that routes each response
// frame to the stream that asked.
type framedConn struct {
	cn *frame.Conn

	mu      sync.Mutex
	streams map[uint64]chan frameResp
	nextID  uint64
	dead    error // reader exit reason; all pending calls fail with it
}

type frameResp struct {
	t       frame.Type
	payload []byte // owned copy (backed by *buf when non-nil)
	buf     *[]byte
}

// Pools for the per-call machinery: the response rendezvous channel,
// the payload copy the read loop hands over, and the timer that stands
// in for a per-call context.WithTimeout. Together they make a framed
// exchange allocation-free on the client.
var respChanPool = sync.Pool{New: func() any { return make(chan frameResp, 1) }}

var timerPool sync.Pool

// putRespBuf releases a response payload's backing buffer once the
// caller is done with it. Callers that hand the payload to the user
// (JobRaw) simply skip the release.
func putRespBuf(buf *[]byte) {
	if buf != nil {
		wire.PutBuf(buf)
	}
}

// dialFramed establishes and handshakes one framed connection.
func dialFramed(addr, secret string) (*framedConn, error) {
	nc, err := net.DialTimeout("tcp", addr, frameDialTimeout)
	if err != nil {
		return nil, err
	}
	cn := frame.NewConn(nc, 0)
	cn.SetWriteGrace(frameDialTimeout)
	cn.SetReadDeadline(time.Now().Add(frameDialTimeout))
	if err := cn.WriteFrame(frame.THello, 0, frame.AppendHello(nil, secret)); err != nil {
		cn.Close()
		return nil, err
	}
	f, err := cn.ReadFrame()
	if err != nil {
		cn.Close()
		return nil, err
	}
	if f.Type != frame.THelloOK {
		cn.Close()
		if f.Type == frame.TError {
			if code, msg, _, _, derr := frame.DecodeError(f.Payload); derr == nil {
				return nil, fmt.Errorf("hyrec client: framed handshake refused (%s): %s", code, msg)
			}
		}
		return nil, fmt.Errorf("hyrec client: framed handshake answered %#x", byte(f.Type))
	}
	cn.SetReadDeadline(time.Time{})
	fc := &framedConn{cn: cn, streams: make(map[uint64]chan frameResp), nextID: 1}
	go fc.readLoop()
	return fc, nil
}

// readLoop demultiplexes response frames onto their streams until the
// connection dies, then fails every pending call.
func (fc *framedConn) readLoop() {
	for {
		f, err := fc.cn.ReadFrame()
		if err != nil {
			fc.mu.Lock()
			fc.dead = err
			for id, ch := range fc.streams {
				close(ch)
				delete(fc.streams, id)
			}
			fc.mu.Unlock()
			fc.cn.Close()
			return
		}
		fc.mu.Lock()
		ch, ok := fc.streams[f.Stream]
		if ok {
			delete(fc.streams, f.Stream)
		}
		fc.mu.Unlock()
		if ok {
			// The frame payload aliases the read buffer; hand the stream
			// its own (pooled) copy.
			buf := wire.GetBuf()
			*buf = append((*buf)[:0], f.Payload...)
			ch <- frameResp{t: f.Type, payload: *buf, buf: buf}
		}
	}
}

// call runs one request/response exchange on its own stream. A nil
// error with t == frame.TError never escapes: error envelopes are
// decoded into *APIError. The returned release buffer (when non-nil)
// backs the payload; hand it to putRespBuf once the payload is done
// with, or keep both when the payload escapes to the caller.
// A timeout > 0 bounds the exchange like a per-call context deadline,
// but rides a pooled timer so the hot path allocates nothing.
func (fc *framedConn) call(ctx context.Context, timeout time.Duration, t frame.Type, payload []byte) (frame.Type, []byte, *[]byte, error) {
	fc.mu.Lock()
	if fc.dead != nil {
		err := fc.dead
		fc.mu.Unlock()
		return 0, nil, nil, err
	}
	id := fc.nextID
	fc.nextID++
	ch := respChanPool.Get().(chan frameResp)
	fc.streams[id] = ch
	fc.mu.Unlock()

	if err := fc.cn.WriteFrame(t, id, payload); err != nil {
		fc.forget(id)
		return 0, nil, nil, err
	}

	var timerC <-chan time.Time
	var tm *time.Timer
	if timeout > 0 {
		if v := timerPool.Get(); v != nil {
			tm = v.(*time.Timer)
			tm.Reset(timeout)
		} else {
			tm = time.NewTimer(timeout)
		}
		timerC = tm.C
		defer func() {
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			timerPool.Put(tm)
		}()
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			// Closed by the read loop's death; a closed channel cannot be
			// pooled again.
			fc.mu.Lock()
			err := fc.dead
			fc.mu.Unlock()
			if err == nil {
				err = frame.ErrConnClosed
			}
			return 0, nil, nil, err
		}
		respChanPool.Put(ch)
		if resp.t == frame.TError {
			err := decodeFrameError(resp.payload)
			putRespBuf(resp.buf)
			return 0, nil, nil, err
		}
		return resp.t, resp.payload, resp.buf, nil
	case <-ctx.Done():
		// The read loop may still deliver into ch's buffer slot; leave the
		// channel unpooled rather than risk a stale message.
		fc.forget(id)
		return 0, nil, nil, ctx.Err()
	case <-timerC:
		fc.forget(id)
		return 0, nil, nil, context.DeadlineExceeded
	}
}

func (fc *framedConn) forget(id uint64) {
	fc.mu.Lock()
	delete(fc.streams, id)
	fc.mu.Unlock()
}

func (fc *framedConn) close() { fc.cn.Close() }

// decodeFrameError turns a TError payload into the same *APIError the
// JSON path produces, so errors.Is against the hyrec sentinels works
// identically on both transports.
func decodeFrameError(payload []byte) error {
	code, msg, primary, retryMS, err := frame.DecodeError(payload)
	if err != nil {
		return fmt.Errorf("hyrec client: bad framed error envelope: %w", err)
	}
	return &APIError{
		Status: statusForCode(code), Code: code, Message: msg, Primary: primary,
		RetryAfter: time.Duration(retryMS) * time.Millisecond,
	}
}

// statusForCode reconstructs the HTTP status the JSON path would have
// carried — the inverse of the server's statusForErr mapping.
func statusForCode(code string) int {
	switch code {
	case wire.CodeStaleEpoch:
		return http.StatusGone
	case wire.CodeUnknownUser, wire.CodeUnknownLease:
		return http.StatusNotFound
	case wire.CodeMoved, wire.CodeNotPrimary:
		return http.StatusMisdirectedRequest
	case wire.CodeForbidden:
		return http.StatusForbidden
	case wire.CodeBadRequest:
		return http.StatusBadRequest
	case wire.CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case wire.CodeOverloaded:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// ---- client integration ----

// getFramed returns the live framed connection, dialing one if needed.
// A failed dial starts the redial backoff so every subsequent request
// does not pay a connect attempt while the listener is down.
func (c *Client) getFramed() (*framedConn, error) {
	c.frameMu.Lock()
	defer c.frameMu.Unlock()
	if c.framed != nil {
		c.framed.mu.Lock()
		dead := c.framed.dead
		c.framed.mu.Unlock()
		if dead == nil {
			return c.framed, nil
		}
		c.framed.close()
		c.framed = nil
	}
	if !c.frameDownUntil.IsZero() && time.Now().Before(c.frameDownUntil) {
		return nil, frame.ErrConnClosed
	}
	fc, err := dialFramed(c.frameAddr, c.headers[nodeSecretHeader])
	if err != nil {
		c.frameDownUntil = time.Now().Add(frameRedialBackoff)
		return nil, err
	}
	c.frameDownUntil = time.Time{}
	c.framed = fc
	return fc, nil
}

// dropFramed discards fc after a mid-stream failure so the next call
// redials (immediately — only dial failures start the backoff).
func (c *Client) dropFramed(fc *framedConn) {
	fc.close()
	c.frameMu.Lock()
	if c.framed == fc {
		c.framed = nil
	}
	c.frameMu.Unlock()
}

// closeFramed tears the framed connection down (Close path).
func (c *Client) closeFramed() {
	c.frameMu.Lock()
	fc := c.framed
	c.framed = nil
	c.frameMu.Unlock()
	if fc != nil {
		fc.close()
	}
}

// framedCall runs one exchange over the framed lane. handled=false
// means the caller must redo the operation over JSON: the lane is not
// configured, not dialable, the connection dropped mid-exchange, or
// the server answered moved/not_primary (the JSON path owns topology
// re-targeting and retries). A handled typed error surfaces as-is.
func (c *Client) framedCall(ctx context.Context, t frame.Type, payload []byte) (frame.Type, []byte, *[]byte, bool, error) {
	if c.frameAddr == "" {
		return 0, nil, nil, false, nil
	}
	overloadRetried := false
	for {
		fc, err := c.getFramed()
		if err != nil {
			return 0, nil, nil, false, nil
		}
		// Deadline-less contexts get the client-level timeout, exactly like
		// the JSON path's roundTrip — applied as a pooled per-call timer.
		timeout := time.Duration(0)
		if c.timeout > 0 {
			if _, has := ctx.Deadline(); !has {
				timeout = c.timeout
			}
		}
		rt, resp, buf, err := fc.call(ctx, timeout, t, payload)
		if err == nil {
			return rt, resp, buf, true, nil
		}
		if apiErr, ok := err.(*APIError); ok {
			if apiErr.Code == wire.CodeMoved || apiErr.Code == wire.CodeNotPrimary {
				return 0, nil, nil, false, nil
			}
			// The framed twin of roundTrip's overload handling: honor the
			// TError's retry-after hint (capped) and retry exactly once on
			// this lane; a second overloaded answer surfaces as-is rather
			// than falling back to JSON — the HTTP plane shares the same
			// gate, so redoing the request there would just hammer it.
			if apiErr.Code == wire.CodeOverloaded && !overloadRetried && ctx.Err() == nil {
				overloadRetried = true
				if waitOverload(ctx, apiErr.RetryAfter) {
					continue
				}
			}
			return 0, nil, nil, true, err
		}
		if ctx.Err() != nil {
			return 0, nil, nil, true, ctx.Err()
		}
		if err == context.DeadlineExceeded {
			// The pooled per-call timer fired: the client-level timeout
			// elapsed, same surface as the JSON path's deadline.
			return 0, nil, nil, true, err
		}
		// Transport-level failure: drop the connection and let the JSON
		// path (with its retry budget) carry this operation.
		c.dropFramed(fc)
		return 0, nil, nil, false, nil
	}
}

// framedRateBatch ships one ≤MaxBatchRatings chunk as a TRateBatch.
func (c *Client) framedRateBatch(ctx context.Context, ratings []core.Rating) (bool, error) {
	if c.frameAddr == "" {
		return false, nil
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	*buf = frame.AppendRateBatch((*buf)[:0], ratings)
	rt, _, rbuf, handled, err := c.framedCall(ctx, frame.TRateBatch, *buf)
	putRespBuf(rbuf)
	if !handled || err != nil {
		return handled, err
	}
	if rt != frame.TRateOK {
		return true, fmt.Errorf("hyrec client: rate batch answered %#x", byte(rt))
	}
	return true, nil
}

// framedJobRaw fetches u's job payload (the exact JSON bytes) via
// TJobGet.
func (c *Client) framedJobRaw(ctx context.Context, u core.UserID) ([]byte, bool, error) {
	var ub [5]byte
	rt, resp, rbuf, handled, err := c.framedCall(ctx, frame.TJobGet, frame.AppendUID(ub[:0], uint32(u)))
	if !handled || err != nil {
		putRespBuf(rbuf)
		return nil, handled, err
	}
	if rt != frame.TJob {
		putRespBuf(rbuf)
		return nil, true, fmt.Errorf("hyrec client: job get answered %#x", byte(rt))
	}
	// The payload escapes to the caller: its backing buffer leaves the
	// pool with it.
	return resp, true, nil
}

// framedNextJob runs one TJobPull long-poll of up to wait. A nil job
// with handled=true means the queue stayed idle for the window.
func (c *Client) framedNextJob(ctx context.Context, wait time.Duration) (*wire.Job, bool, error) {
	waitMS := uint64(wait / time.Millisecond)
	var wb [10]byte
	rt, resp, rbuf, handled, err := c.framedCall(ctx, frame.TJobPull, frame.AppendUint(wb[:0], waitMS))
	defer putRespBuf(rbuf)
	if !handled || err != nil {
		return nil, handled, err
	}
	if rt != frame.TJob {
		return nil, true, fmt.Errorf("hyrec client: job pull answered %#x", byte(rt))
	}
	if len(resp) == 0 {
		return nil, true, nil
	}
	job, err := wire.DecodeJob(resp)
	return job, true, err
}

// framedAck completes or abandons one lease as a single-entry
// TAckBatch (the server preserves the typed error surface for these).
func (c *Client) framedAck(ctx context.Context, lease uint64, done bool) (bool, error) {
	var ab [24]byte
	acks := [1]frame.Ack{{Lease: lease, Done: done}}
	payload := frame.AppendAckBatch(ab[:0], acks[:])
	rt, _, rbuf, handled, err := c.framedCall(ctx, frame.TAckBatch, payload)
	putRespBuf(rbuf)
	if !handled || err != nil {
		return handled, err
	}
	if rt != frame.TAckOK {
		return true, fmt.Errorf("hyrec client: ack answered %#x", byte(rt))
	}
	return true, nil
}

// framedApplyResult posts a result as the exact JSON bytes a POST
// /v1/result body would carry and decodes the TRecs answer.
func (c *Client) framedApplyResult(ctx context.Context, res *wire.Result) ([]core.ItemID, bool, error) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	*buf = wire.AppendResult((*buf)[:0], res)
	rt, resp, rbuf, handled, err := c.framedCall(ctx, frame.TResult, *buf)
	defer putRespBuf(rbuf)
	if !handled || err != nil {
		return nil, handled, err
	}
	if rt != frame.TRecs {
		return nil, true, fmt.Errorf("hyrec client: result answered %#x", byte(rt))
	}
	xs, _, err := frame.DecodeU32s(resp, nil, wire.MaxBatchRatings)
	if err != nil {
		return nil, true, fmt.Errorf("hyrec client: bad recs payload: %w", err)
	}
	recs := make([]core.ItemID, len(xs))
	for i, x := range xs {
		recs[i] = core.ItemID(x)
	}
	return recs, true, nil
}

// framedReplicate ships one replication batch as a binary TReplBatch —
// the node-plane hot path.
func (c *Client) framedReplicate(ctx context.Context, b *wire.ReplBatch) (*wire.ReplAck, bool, error) {
	if c.frameAddr == "" {
		return nil, false, nil
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	*buf = frame.AppendReplBatch((*buf)[:0], b)
	rt, resp, rbuf, handled, err := c.framedCall(ctx, frame.TReplBatch, *buf)
	defer putRespBuf(rbuf)
	if !handled || err != nil {
		return nil, handled, err
	}
	if rt != frame.TReplOK {
		return nil, true, fmt.Errorf("hyrec client: replicate answered %#x", byte(rt))
	}
	applied, rest, err := cutReplOK(resp)
	if err != nil {
		return nil, true, err
	}
	seq, _, err := cutReplOK(rest)
	if err != nil {
		return nil, true, err
	}
	return &wire.ReplAck{Applied: int(applied), Seq: seq}, true, nil
}

func cutReplOK(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("hyrec client: bad repl ack payload")
	}
	return v, data[n:], nil
}
