package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyrec"
)

// scripted is one canned answer for a scripted endpoint.
type scripted struct {
	status int
	body   string
}

var (
	movedAnswer   = scripted{http.StatusMisdirectedRequest, `{"error":{"code":"moved","message":"user moved"}}`}
	unknownAnswer = scripted{http.StatusNotFound, `{"error":{"code":"unknown_user","message":"who"}}`}
	hoodAnswer    = scripted{http.StatusOK, `{"neighbors":[2,3]}`}
)

// TestClientMovedRetryTable exercises every branch of the CodeMoved
// retry-once protocol: a moved answer triggers one topology refetch and
// one retry; a second moved answer gives up as hyrec.ErrMoved; a
// different error after the retry surfaces as itself; and a broken
// topology endpoint does not block the retry.
func TestClientMovedRetryTable(t *testing.T) {
	cases := []struct {
		name string
		// answers for successive GET /v1/neighbors calls.
		answers    []scripted
		topoStatus int // 0 → healthy topology endpoint
		wantErr    error
		wantCalls  int64 // exact endpoint hits
		wantTopo   bool  // cache refreshed with the new topology
	}{
		{
			name:      "moved then success retries once",
			answers:   []scripted{movedAnswer, hoodAnswer},
			wantCalls: 2,
			wantTopo:  true,
		},
		{
			name:      "double moved gives up",
			answers:   []scripted{movedAnswer, movedAnswer},
			wantErr:   hyrec.ErrMoved,
			wantCalls: 2,
			wantTopo:  true,
		},
		{
			name:      "different error after retry surfaces as itself",
			answers:   []scripted{movedAnswer, unknownAnswer},
			wantErr:   hyrec.ErrUnknownUser,
			wantCalls: 2,
			wantTopo:  true,
		},
		{
			name:       "broken topology endpoint does not block the retry",
			answers:    []scripted{movedAnswer, hoodAnswer},
			topoStatus: http.StatusInternalServerError,
			wantCalls:  2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls, topoCalls atomic.Int64
			mux := http.NewServeMux()
			mux.HandleFunc("/v1/neighbors", func(w http.ResponseWriter, r *http.Request) {
				n := calls.Add(1)
				if int(n) > len(tc.answers) {
					t.Errorf("call %d beyond the script (retry-once violated)", n)
					w.WriteHeader(http.StatusTeapot)
					return
				}
				a := tc.answers[n-1]
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(a.status)
				w.Write([]byte(a.body))
			})
			mux.HandleFunc("/v1/topology", func(w http.ResponseWriter, r *http.Request) {
				topoCalls.Add(1)
				if tc.topoStatus != 0 {
					w.WriteHeader(tc.topoStatus)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(`{"partitions":8,"vnodes":64,"migrating":true,"users_moved_total":3}`))
			})
			ts := httptest.NewServer(mux)
			defer ts.Close()

			c := New(ts.URL)
			defer c.Close()
			hood, err := c.Neighbors(tctx, 1)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want errors.Is(%v)", err, tc.wantErr)
				}
			} else {
				if err != nil {
					t.Fatalf("Neighbors = %v, want success after one retry", err)
				}
				if len(hood) != 2 {
					t.Fatalf("retried neighbors = %v", hood)
				}
			}
			if got := calls.Load(); got != tc.wantCalls {
				t.Fatalf("endpoint hit %d times, want exactly %d", got, tc.wantCalls)
			}
			if got := topoCalls.Load(); got != 1 {
				t.Fatalf("topology refetched %d times, want 1", got)
			}
			topo := c.CachedTopology()
			if tc.wantTopo && (topo == nil || topo.Partitions != 8) {
				t.Fatalf("topology cache not refreshed: %+v", topo)
			}
			if !tc.wantTopo && topo != nil {
				t.Fatalf("topology cache unexpectedly set from a broken endpoint: %+v", topo)
			}
		})
	}
}

// TestClientMovedRetryConcurrentTopologyRefetch: many requests hit
// moved answers at once; every one refetches the (slow) topology
// endpoint concurrently, retries exactly once, and succeeds. The cache
// must end up at the new topology without torn state.
func TestClientMovedRetryConcurrentTopologyRefetch(t *testing.T) {
	const workers = 16
	var topoCalls atomic.Int64
	var mu sync.Mutex
	seen := make(map[string]int) // per-uid call count

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/neighbors", func(w http.ResponseWriter, r *http.Request) {
		uid := r.URL.Query().Get("uid")
		mu.Lock()
		seen[uid]++
		n := seen[uid]
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch n {
		case 1:
			w.WriteHeader(http.StatusMisdirectedRequest)
			w.Write([]byte(`{"error":{"code":"moved","message":"user moved"}}`))
		case 2:
			w.Write([]byte(`{"neighbors":[9]}`))
		default:
			t.Errorf("uid %s hit the endpoint %d times (retry-once violated)", uid, n)
			w.WriteHeader(http.StatusTeapot)
		}
	})
	mux.HandleFunc("/v1/topology", func(w http.ResponseWriter, r *http.Request) {
		topoCalls.Add(1)
		time.Sleep(10 * time.Millisecond) // force the refetches to overlap
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"partitions":4,"vnodes":64,"migrating":false,"users_moved_total":99}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL)
	defer c.Close()
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(u hyrec.UserID) {
			hood, err := c.Neighbors(tctx, u)
			if err == nil && len(hood) != 1 {
				err = fmt.Errorf("uid %d: neighbors = %v", u, hood)
			}
			errs <- err
		}(hyrec.UserID(i + 1))
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := topoCalls.Load(); got != workers {
		t.Fatalf("topology refetched %d times, want one per moved answer (%d)", got, workers)
	}
	topo := c.CachedTopology()
	if topo == nil || topo.Partitions != 4 {
		t.Fatalf("topology cache not settled after concurrent refetch: %+v", topo)
	}
}
