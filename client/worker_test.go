package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"hyrec"
)

// newSchedServer boots an engine with the asynchronous scheduler and
// pre-rates n users so the staleness queue has work.
func newSchedServer(t *testing.T, mut func(*hyrec.Config), n int) (*hyrec.Engine, *httptest.Server) {
	t.Helper()
	cfg := hyrec.DefaultConfig()
	cfg.K = 3
	cfg.R = 3
	// No accidental expiry under a loaded -race CPU; churn tests
	// override with a short TTL explicitly.
	cfg.LeaseTTL = time.Minute
	if mut != nil {
		mut(&cfg)
	}
	eng := hyrec.NewEngine(cfg)
	srv := hyrec.NewServiceServer(eng, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); eng.Close() })

	var ratings []hyrec.Rating
	for u := hyrec.UserID(1); u <= hyrec.UserID(n); u++ {
		for j := 0; j < 3; j++ {
			ratings = append(ratings, hyrec.Rating{User: u, Item: hyrec.ItemID((int(u) + j) % 7), Liked: true})
		}
	}
	if err := eng.RateBatch(tctx, ratings); err != nil {
		t.Fatal(err)
	}
	return eng, ts
}

// TestWorkerDrainsQueue runs the full remote worker loop: long-poll
// lease → widget compute → result post, until the staleness queue is
// empty and every user is refreshed.
func TestWorkerDrainsQueue(t *testing.T) {
	eng, ts := newSchedServer(t, func(cfg *hyrec.Config) {
		cfg.LeaseTTL = time.Minute // nothing should expire in this test
	}, 8)
	c := New(ts.URL)
	defer c.Close()

	w := NewWorker(c, WithPollBudget(100*time.Millisecond))
	for i := 0; i < 50; i++ {
		worked, err := w.RunOnce(tctx)
		if err != nil {
			t.Fatal(err)
		}
		if !worked {
			break
		}
	}
	done, abandoned := w.Stats()
	if done != 8 || abandoned != 0 {
		t.Fatalf("worker stats done=%d abandoned=%d, want 8/0", done, abandoned)
	}
	if !eng.Scheduler().Quiet() {
		t.Fatalf("scheduler not quiet: %+v", eng.Scheduler().Stats())
	}
	for u := hyrec.UserID(1); u <= 8; u++ {
		if !eng.Scheduler().RefreshedUser(u) {
			t.Fatalf("user %d not refreshed", u)
		}
		hood, err := c.Neighbors(tctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if len(hood) == 0 {
			t.Fatalf("user %d has empty KNN row after worker refresh", u)
		}
	}
}

// TestWorkerPoliteAbandonReissues: an abandoning worker acks done=false
// and the job is re-issued immediately to the next worker.
func TestWorkerPoliteAbandonReissues(t *testing.T) {
	eng, ts := newSchedServer(t, func(cfg *hyrec.Config) {
		cfg.LeaseTTL = time.Minute
	}, 1)
	c := New(ts.URL)
	defer c.Close()

	churny := NewWorker(c, WithPollBudget(100*time.Millisecond), WithAbandonProb(1, 1))
	worked, err := churny.RunOnce(tctx)
	if err != nil || !worked {
		t.Fatalf("churny RunOnce = %v, %v", worked, err)
	}
	if _, ab := churny.Stats(); ab != 1 {
		t.Fatalf("abandoned = %d, want 1", ab)
	}
	st := eng.Scheduler().Stats()
	if st.Abandoned != 1 || st.Reissued != 1 {
		t.Fatalf("scheduler stats %+v, want 1 abandoned / 1 reissued", st)
	}

	steady := NewWorker(c, WithPollBudget(time.Second))
	worked, err = steady.RunOnce(tctx)
	if err != nil || !worked {
		t.Fatalf("steady worker found no re-issued job: %v, %v", worked, err)
	}
	if done, _ := steady.Stats(); done != 1 {
		t.Fatal("steady worker did not complete the re-issued job")
	}
}

// TestWorkerSilentChurnAbsorbedByFallback is the crash model: the
// worker leases and vanishes, the lease expires, retries burn out, and
// the server-side fallback pool refreshes the row anyway.
func TestWorkerSilentChurnAbsorbedByFallback(t *testing.T) {
	eng, ts := newSchedServer(t, func(cfg *hyrec.Config) {
		cfg.LeaseTTL = 25 * time.Millisecond
		cfg.LeaseRetries = -1 // first expiry → fallback
		cfg.FallbackWorkers = 2
	}, 3)
	c := New(ts.URL)
	defer c.Close()

	vanish := NewWorker(c, WithPollBudget(100*time.Millisecond),
		WithAbandonProb(1, 1), WithSilentAbandon())
	for i := 0; i < 3; i++ {
		if worked, err := vanish.RunOnce(tctx); err != nil || !worked {
			t.Fatalf("vanishing worker lease %d: %v, %v", i, worked, err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if eng.Scheduler().Quiet() && len(eng.Scheduler().Unrefreshed()) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := eng.Scheduler().Stats()
	if st.Expired == 0 || st.FallbackRuns == 0 {
		t.Fatalf("fallback never absorbed the churned leases: %+v", st)
	}
	if un := eng.Scheduler().Unrefreshed(); len(un) != 0 {
		t.Fatalf("users %v never refreshed (stats %+v)", un, st)
	}
}

// TestWorkerRunStopsOnCancel: Run is a clean loop — context
// cancellation ends it without error.
func TestWorkerRunStopsOnCancel(t *testing.T) {
	_, ts := newSchedServer(t, nil, 2)
	c := New(ts.URL)
	defer c.Close()

	w := NewWorker(c, WithPollBudget(50*time.Millisecond))
	ctx, cancel := context.WithTimeout(tctx, 300*time.Millisecond)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("Run returned %v on cancellation", err)
	}
	if done, _ := w.Stats(); done != 2 {
		t.Fatalf("Run completed %d jobs, want 2", done)
	}
}
