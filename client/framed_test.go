package client

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyrec"
	"hyrec/internal/server"
	"hyrec/internal/widget"
	"hyrec/internal/wire"
)

// countingHandler wraps a server handler and counts requests to the
// hot-path endpoints the framed transport is supposed to absorb.
type countingHandler struct {
	http.Handler
	rate, job, result, ack, replicate atomic.Int64
}

func countHotPaths(h http.Handler) *countingHandler {
	ch := &countingHandler{}
	ch.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/rate":
			ch.rate.Add(1)
		case "/v1/job":
			ch.job.Add(1)
		case "/v1/result":
			ch.result.Add(1)
		case "/v1/ack":
			ch.ack.Add(1)
		case "/v1/replicate":
			ch.replicate.Add(1)
		}
		h.ServeHTTP(w, r)
	})
	return ch
}

// newFramedServer boots an engine-backed server with both an HTTP
// listener (request-counted) and a framed listener.
func newFramedServer(t *testing.T, mut func(*hyrec.Config)) (*hyrec.Engine, *countingHandler, *httptest.Server, string) {
	t.Helper()
	cfg := hyrec.DefaultConfig()
	cfg.K = 3
	cfg.R = 3
	if mut != nil {
		mut(&cfg)
	}
	eng := hyrec.NewEngine(cfg)
	srv := hyrec.NewServiceServer(eng, 0)
	ch := countHotPaths(srv.Handler())
	ts := httptest.NewServer(ch)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeFrames(ln)
	t.Cleanup(func() { ts.Close(); srv.Close(); eng.Close() })
	return eng, ch, ts, ln.Addr().String()
}

// relay is a severable TCP proxy in front of the framed listener, so
// tests can drop a framed connection mid-stream without touching the
// server.
type relay struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	conns  []net.Conn
}

func newRelay(t *testing.T, target string) *relay {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &relay{ln: ln, target: target}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			r.mu.Lock()
			r.conns = append(r.conns, c, up)
			r.mu.Unlock()
			go func() { io.Copy(up, c); up.Close() }()
			go func() { io.Copy(c, up); c.Close() }()
		}
	}()
	t.Cleanup(r.kill)
	return r
}

func (r *relay) addr() string { return r.ln.Addr().String() }

func (r *relay) kill() {
	r.ln.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = nil
}

// TestFramedClientFullLoop runs the complete widget protocol through a
// framed client and proves the hot endpoints never touched HTTP.
func TestFramedClientFullLoop(t *testing.T) {
	_, ch, ts, frameAddr := newFramedServer(t, nil)
	c := New(ts.URL, WithFramed(frameAddr))
	defer c.Close()

	var ratings []hyrec.Rating
	for u := hyrec.UserID(1); u <= 10; u++ {
		ratings = append(ratings,
			hyrec.Rating{User: u, Item: hyrec.ItemID(u % 3), Liked: true},
			hyrec.Rating{User: u, Item: 100, Liked: true})
	}
	if err := c.RateBatch(tctx, ratings); err != nil {
		t.Fatal(err)
	}

	w := widget.New()
	gotRecs := false
	for round := 0; round < 3; round++ {
		for u := hyrec.UserID(1); u <= 10; u++ {
			job, err := c.Job(tctx, u)
			if err != nil {
				t.Fatalf("job(%d): %v", u, err)
			}
			res, _ := w.Execute(job)
			recs, err := c.ApplyResult(tctx, res)
			if err != nil {
				t.Fatalf("apply(%d): %v", u, err)
			}
			if len(recs) > 0 {
				gotRecs = true
			}
		}
	}
	if !gotRecs {
		t.Fatal("no recommendations after three framed client rounds")
	}
	if n := ch.rate.Load() + ch.job.Load() + ch.result.Load(); n != 0 {
		t.Fatalf("%d hot-path HTTP requests leaked past the framed lane (rate=%d job=%d result=%d)",
			n, ch.rate.Load(), ch.job.Load(), ch.result.Load())
	}
}

// TestFramedJSONConvergence is the interop criterion: the same workload
// through a framed client and a plain JSON client, against two
// identically-seeded engines, converges to identical neighborhoods and
// recommendations.
func TestFramedJSONConvergence(t *testing.T) {
	runWorkload := func(t *testing.T, framed bool) ([][]hyrec.UserID, [][]hyrec.ItemID) {
		t.Helper()
		_, _, ts, frameAddr := newFramedServer(t, nil)
		opts := []Option{}
		if framed {
			opts = append(opts, WithFramed(frameAddr))
		}
		c := New(ts.URL, opts...)
		defer c.Close()

		var ratings []hyrec.Rating
		for u := hyrec.UserID(1); u <= 8; u++ {
			for j := 0; j < 3; j++ {
				ratings = append(ratings, hyrec.Rating{User: u, Item: hyrec.ItemID((int(u) + j) % 7), Liked: true})
			}
		}
		if err := c.RateBatch(tctx, ratings); err != nil {
			t.Fatal(err)
		}
		w := widget.New()
		for round := 0; round < 3; round++ {
			for u := hyrec.UserID(1); u <= 8; u++ {
				job, err := c.Job(tctx, u)
				if err != nil {
					t.Fatal(err)
				}
				res, _ := w.Execute(job)
				if _, err := c.ApplyResult(tctx, res); err != nil {
					t.Fatal(err)
				}
			}
		}
		var hoods [][]hyrec.UserID
		var recs [][]hyrec.ItemID
		for u := hyrec.UserID(1); u <= 8; u++ {
			hood, err := c.Neighbors(tctx, u)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := c.Recommendations(tctx, u, 5)
			if err != nil {
				t.Fatal(err)
			}
			hoods = append(hoods, hood)
			recs = append(recs, rs)
		}
		return hoods, recs
	}

	framedHoods, framedRecs := runWorkload(t, true)
	jsonHoods, jsonRecs := runWorkload(t, false)
	for i := range framedHoods {
		if len(framedHoods[i]) != len(jsonHoods[i]) {
			t.Fatalf("user %d neighborhood diverges: framed %v vs json %v", i+1, framedHoods[i], jsonHoods[i])
		}
		for j := range framedHoods[i] {
			if framedHoods[i][j] != jsonHoods[i][j] {
				t.Fatalf("user %d neighborhood diverges: framed %v vs json %v", i+1, framedHoods[i], jsonHoods[i])
			}
		}
		if len(framedRecs[i]) != len(jsonRecs[i]) {
			t.Fatalf("user %d recs diverge: framed %v vs json %v", i+1, framedRecs[i], jsonRecs[i])
		}
		for j := range framedRecs[i] {
			if framedRecs[i][j] != jsonRecs[i][j] {
				t.Fatalf("user %d recs diverge: framed %v vs json %v", i+1, framedRecs[i], jsonRecs[i])
			}
		}
	}
}

// fixedSampler makes job assembly deterministic across calls: the
// default sampler draws random candidates per call, which is correct
// for the protocol but would make byte-comparing two fetches vacuous.
type fixedSampler struct{ users []hyrec.UserID }

func (s fixedSampler) Sample(u hyrec.UserID, _ int) []hyrec.UserID {
	var out []hyrec.UserID
	for _, c := range s.users {
		if c != u {
			out = append(out, c)
		}
	}
	return out
}

// TestFramedJobRawByteEquivalence pins the transport-equivalence
// criterion from the client's side: JobRaw over the framed lane is
// byte-for-byte JobRaw over HTTP.
func TestFramedJobRawByteEquivalence(t *testing.T) {
	eng, _, ts, frameAddr := newFramedServer(t, nil)
	eng.SetSampler(fixedSampler{users: []hyrec.UserID{1, 2, 3, 4}})
	for u := hyrec.UserID(1); u <= 4; u++ {
		if err := eng.Rate(tctx, u, hyrec.ItemID(u%3), true); err != nil {
			t.Fatal(err)
		}
		if err := eng.Rate(tctx, u, 9, true); err != nil {
			t.Fatal(err)
		}
	}
	framed := New(ts.URL, WithFramed(frameAddr))
	defer framed.Close()
	plain := New(ts.URL)
	defer plain.Close()

	for u := hyrec.UserID(1); u <= 4; u++ {
		fb, err := framed.JobRaw(tctx, u)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := plain.JobRaw(tctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if string(fb) != string(jb) {
			t.Fatalf("user %d job bytes diverge:\nframed: %s\njson:   %s", u, fb, jb)
		}
	}
}

// TestFramedWorkerDrainsQueue runs the stock Worker over a framed
// client: the lease/compute/result loop rides TJobPull/TResult with no
// HTTP requests on the worker endpoints.
func TestFramedWorkerDrainsQueue(t *testing.T) {
	eng, ch, ts, frameAddr := newFramedServer(t, func(cfg *hyrec.Config) {
		cfg.LeaseTTL = time.Minute
	})
	var ratings []hyrec.Rating
	for u := hyrec.UserID(1); u <= 8; u++ {
		for j := 0; j < 3; j++ {
			ratings = append(ratings, hyrec.Rating{User: u, Item: hyrec.ItemID((int(u) + j) % 7), Liked: true})
		}
	}
	if err := eng.RateBatch(tctx, ratings); err != nil {
		t.Fatal(err)
	}

	c := New(ts.URL, WithFramed(frameAddr))
	defer c.Close()
	w := NewWorker(c, WithPollBudget(100*time.Millisecond))
	for i := 0; i < 50; i++ {
		worked, err := w.RunOnce(tctx)
		if err != nil {
			t.Fatal(err)
		}
		if !worked {
			break
		}
	}
	if done, abandoned := w.Stats(); done != 8 || abandoned != 0 {
		t.Fatalf("framed worker stats done=%d abandoned=%d, want 8/0", done, abandoned)
	}
	if !eng.Scheduler().Quiet() {
		t.Fatalf("scheduler not quiet: %+v", eng.Scheduler().Stats())
	}
	if n := ch.job.Load() + ch.result.Load() + ch.ack.Load(); n != 0 {
		t.Fatalf("%d worker HTTP requests leaked past the framed lane", n)
	}
}

// TestFramedDropFallsBackToJSON severs the framed connection
// mid-session and proves the client carries on over JSON — including
// the leased job the drop stranded, which the scheduler re-issues
// after its TTL and a JSON worker completes.
func TestFramedDropFallsBackToJSON(t *testing.T) {
	eng, ch, ts, frameAddr := newFramedServer(t, func(cfg *hyrec.Config) {
		cfg.LeaseTTL = 100 * time.Millisecond
		cfg.LeaseRetries = 2
	})
	rl := newRelay(t, frameAddr)
	c := New(ts.URL, WithFramed(rl.addr()))
	defer c.Close()

	var ratings []hyrec.Rating
	for u := hyrec.UserID(1); u <= 3; u++ {
		for j := 0; j < 3; j++ {
			ratings = append(ratings, hyrec.Rating{User: u, Item: hyrec.ItemID((int(u) + j) % 7), Liked: true})
		}
	}
	if err := c.RateBatch(tctx, ratings); err != nil {
		t.Fatal(err)
	}
	if got := ch.rate.Load(); got != 0 {
		t.Fatalf("rate batch used HTTP (%d requests) while the framed lane was up", got)
	}

	// Lease a job over the framed lane, then sever the transport with
	// the lease outstanding.
	job, err := c.NextJob(tctx)
	if err != nil || job == nil {
		t.Fatalf("framed NextJob = %v, %v", job, err)
	}
	strandedLease := job.Lease
	rl.kill()

	// The client keeps working: subsequent operations fall back to JSON.
	if err := c.RateBatch(tctx, []hyrec.Rating{{User: 9, Item: 1, Liked: true}}); err != nil {
		t.Fatalf("rate batch after framed drop: %v", err)
	}
	if got := ch.rate.Load(); got == 0 {
		t.Fatal("rate batch after framed drop never reached the JSON path")
	}

	// The stranded lease expires and the scheduler re-issues the job; a
	// JSON-side worker drains everything.
	w := NewWorker(c, WithPollBudget(150*time.Millisecond))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := w.RunOnce(tctx); err != nil {
			t.Fatal(err)
		}
		if eng.Scheduler().Quiet() && len(eng.Scheduler().Unrefreshed()) == 0 {
			break
		}
	}
	if !eng.Scheduler().Quiet() {
		t.Fatalf("scheduler never drained after framed drop: %+v", eng.Scheduler().Stats())
	}
	if st := eng.Scheduler().Stats(); st.Expired == 0 && st.Reissued == 0 {
		t.Fatalf("stranded lease %d neither expired nor re-issued: %+v", strandedLease, st)
	}
	if got := ch.job.Load() + ch.result.Load(); got == 0 {
		t.Fatal("post-drop worker loop never reached the JSON path")
	}
}

// replRecorder implements the server's Replicator surface on top of an
// engine, recording what the framed replication lane delivers.
type replRecorder struct {
	*hyrec.Engine
	mu      sync.Mutex
	batches []*wire.ReplBatch
}

func (r *replRecorder) Replicate(_ context.Context, b *wire.ReplBatch) (*wire.ReplAck, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, b)
	return &wire.ReplAck{Applied: len(b.Users), Seq: b.Seq}, nil
}

// TestFramedReplicateSecret drives Replicate over the framed lane with
// the node-plane secret — functionally pinning that the client's
// handshake secret is the same X-Hyrec-Node-Secret header the HTTP
// plane enforces — and proves a wrong secret is refused with the same
// typed forbidden error.
func TestFramedReplicateSecret(t *testing.T) {
	cfg := hyrec.DefaultConfig()
	cfg.K = 3
	eng := hyrec.NewEngine(cfg)
	rec := &replRecorder{Engine: eng}
	srv := hyrec.NewServiceServer(rec, 0)
	srv.RequireNodeSecret("peer-s3cret")
	ch := countHotPaths(srv.Handler())
	ts := httptest.NewServer(ch)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeFrames(ln)
	t.Cleanup(func() { ts.Close(); srv.Close(); eng.Close() })

	batch := &wire.ReplBatch{Epoch: 1, Partition: 2, Seq: 7, Users: []wire.ReplUser{{UID: 4, Liked: []uint32{1, 2}}}}

	// The node's client carries the secret as a header (what the HTTP
	// plane checks); the framed handshake must present the same secret.
	good := New(ts.URL, WithFramed(ln.Addr().String()),
		WithHeader(server.NodeSecretHeader, "peer-s3cret"))
	defer good.Close()
	ack, err := good.Replicate(tctx, batch)
	if err != nil {
		t.Fatalf("framed replicate with secret: %v", err)
	}
	if ack.Applied != 1 || ack.Seq != 7 {
		t.Fatalf("framed replicate ack = %+v", ack)
	}
	rec.mu.Lock()
	delivered := len(rec.batches)
	var via *wire.ReplBatch
	if delivered > 0 {
		via = rec.batches[0]
	}
	rec.mu.Unlock()
	if delivered != 1 || via.Seq != 7 || len(via.Users) != 1 || via.Users[0].UID != 4 {
		t.Fatalf("replicator saw %d batches, first %+v", delivered, via)
	}
	if got := ch.replicate.Load(); got != 0 {
		t.Fatalf("replicate used HTTP (%d requests) despite the framed lane", got)
	}

	// A wrong secret surfaces the same typed forbidden error the HTTP
	// plane answers — not a silent JSON fallback that would bypass the
	// framed gate's decision.
	bad := New(ts.URL, WithFramed(ln.Addr().String()),
		WithHeader(server.NodeSecretHeader, "wrong"))
	defer bad.Close()
	_, err = bad.Replicate(tctx, batch)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != wire.CodeForbidden {
		t.Fatalf("framed replicate with wrong secret = %v, want forbidden APIError", err)
	}
}

// TestFramedAbsentListenerFallsBack points WithFramed at a dead port:
// every operation must transparently use JSON, and the failed dial must
// not be re-paid per request inside the backoff window.
func TestFramedAbsentListenerFallsBack(t *testing.T) {
	_, ch, ts, _ := newFramedServer(t, nil)
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	c := New(ts.URL, WithFramed(deadAddr))
	defer c.Close()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := c.RateBatch(tctx, []hyrec.Rating{{User: 1, Item: 1, Liked: true}}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("5 fallback rate batches took %v — dial attempts not gated by the backoff", elapsed)
	}
	if got := ch.rate.Load(); got != 5 {
		t.Fatalf("JSON path saw %d rate batches, want 5", got)
	}
}
