package client

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hyrec"
	"hyrec/internal/widget"
)

// Worker is a pull-based remote compute node: it long-polls the server's
// staleness queue (GET /v1/job?worker=1), executes each leased job with
// the widget kernel — the same KNN selection and item recommendation a
// browser runs — and posts the result back, completing the lease. A
// fleet of Workers is how a deployment drains personalization backlog
// with machines it controls, alongside (or instead of) end-user
// browsers.
//
//	c := client.New("http://localhost:8080")
//	w := client.NewWorker(c)
//	ctx, cancel := context.WithCancel(context.Background())
//	go w.Run(ctx) // until cancel()
//
// A Worker is NOT safe for concurrent use (it owns an RNG for the churn
// model); run one Worker per goroutine, sharing the Client.
type Worker struct {
	c  *Client
	w  *widget.Widget
	rw sync.Mutex // guards rng

	pollBudget  time.Duration
	abandonProb float64
	silent      bool
	rng         *rand.Rand

	done      atomic.Int64
	abandoned atomic.Int64
}

// WorkerOption customises a Worker.
type WorkerOption func(*Worker)

// WithWorkerWidget replaces the compute kernel (e.g. a parallel or
// Jaccard-metric widget).
func WithWorkerWidget(w *widget.Widget) WorkerOption {
	return func(wk *Worker) { wk.w = w }
}

// WithPollBudget bounds each RunOnce long-poll (default 2s). Run loops
// regardless; the budget only shapes how often control returns.
func WithPollBudget(d time.Duration) WorkerOption {
	return func(wk *Worker) { wk.pollBudget = d }
}

// WithAbandonProb makes the worker abandon each leased job with
// probability p — the churn model of the paper's Section 2.3 discussion:
// a browser that navigates away mid-computation. By default the abandon
// is polite (POST /v1/ack with done=false, immediate re-issue); combine
// with WithSilentAbandon for crash-style churn where the server only
// finds out when the lease expires.
func WithAbandonProb(p float64, seed int64) WorkerOption {
	return func(wk *Worker) {
		wk.abandonProb = p
		wk.rng = rand.New(rand.NewSource(seed))
	}
}

// WithSilentAbandon drops abandoned jobs without notifying the server
// (the lease must expire), modelling a crashed or vanished browser.
func WithSilentAbandon() WorkerOption {
	return func(wk *Worker) { wk.silent = true }
}

// NewWorker builds a worker on c with the default (cosine, laptop)
// widget kernel.
func NewWorker(c *Client, opts ...WorkerOption) *Worker {
	wk := &Worker{c: c, w: widget.New(), pollBudget: 2 * time.Second, rng: rand.New(rand.NewSource(1))}
	for _, opt := range opts {
		opt(wk)
	}
	return wk
}

// Stats returns how many jobs this worker completed and abandoned.
func (wk *Worker) Stats() (done, abandoned int64) {
	return wk.done.Load(), wk.abandoned.Load()
}

// RunOnce leases at most one job, executes it and posts the result.
// worked=false means the queue stayed empty for the poll budget.
func (wk *Worker) RunOnce(ctx context.Context) (worked bool, err error) {
	pollCtx, cancel := context.WithTimeout(ctx, wk.pollBudget)
	defer cancel()
	job, err := wk.c.NextJob(pollCtx)
	if err != nil {
		return false, err
	}
	if job == nil {
		return false, nil
	}
	if wk.abandonProb > 0 && wk.draw() < wk.abandonProb {
		wk.abandoned.Add(1)
		if wk.silent {
			return true, nil // churn out: the lease expires server-side
		}
		return true, wk.c.Ack(ctx, job.Lease, false)
	}
	res, _ := wk.w.Execute(job)
	if _, err := wk.c.ApplyResult(ctx, res); err != nil {
		// A stale epoch or superseded lease is the scheduler working, not
		// a worker failure: drop the result and move on.
		if errors.Is(err, hyrec.ErrStaleEpoch) || errors.Is(err, hyrec.ErrUnknownLease) {
			return true, nil
		}
		return true, err
	}
	wk.done.Add(1)
	return true, nil
}

func (wk *Worker) draw() float64 {
	wk.rw.Lock()
	defer wk.rw.Unlock()
	return wk.rng.Float64()
}

// Run loops RunOnce until ctx is done, backing off briefly on transport
// errors so a flapping server is not hammered. It returns nil on a clean
// context cancellation.
func (wk *Worker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		if _, err := wk.RunOnce(ctx); err != nil && ctx.Err() == nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
}
