// Benchmarks regenerating each table and figure of the paper at reduced
// scale (one benchmark per experiment; cmd/hyrec-bench runs the same code
// at full scale), plus ablation benchmarks for the design decisions listed
// in DESIGN.md §5.
package hyrec_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hyrec"
	"hyrec/internal/core"
	"hyrec/internal/experiments"
	"hyrec/internal/loadgen"
	"hyrec/internal/privacy"
	"hyrec/internal/wire"
)

// tctx drives the context-aware Service methods in benchmarks.
var tctx = context.Background()

// benchOpts returns quiet, small-scale options so `go test -bench` stays
// minutes, not hours.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.05, Requests: 50, Seed: 1}
}

func BenchmarkTable2DatasetStats(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(opt); len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure3ViewSimilarity(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure3(opt); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure4ActivityQuality(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if res := experiments.Figure4(opt); res.Users == 0 {
			b.Fatal("no users")
		}
	}
}

func BenchmarkFigure5CandidateSet(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if series := experiments.Figure5(opt); len(series) != 3 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkFigure6RecQuality(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if res := experiments.Figure6(opt); res.Positives == 0 {
			b.Fatal("no positives")
		}
	}
}

func BenchmarkFigure7KNNWallClock(b *testing.B) {
	opt := benchOpts()
	opt.Scale = 0.1 // ML1 at 94 users; larger sets scale down further
	for i := 0; i < b.N; i++ {
		if rows := experiments.Figure7(opt); len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable3CostReduction(b *testing.B) {
	opt := benchOpts()
	opt.Scale = 0.1
	rows := experiments.Figure7(opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := experiments.Table3(opt, rows); len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure8ResponseTime(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure8(opt); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure9Concurrency(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure9(opt); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure10Bandwidth(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure10(opt); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure11ClientImpact(b *testing.B) {
	opt := benchOpts()
	opt.Requests = 30 // 30ms monitor window per load level
	for i := 0; i < b.N; i++ {
		if rows := experiments.Figure11(opt); len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure12CPULoad(b *testing.B) {
	opt := benchOpts()
	opt.Requests = 5
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure12(opt); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure13WidgetProfile(b *testing.B) {
	opt := benchOpts()
	opt.Requests = 5
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure13(opt); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkBandwidthComparison(b *testing.B) {
	opt := benchOpts()
	opt.Scale = 0.005
	opt.Requests = 30 // gossip rounds measured
	for i := 0; i < b.N; i++ {
		if res := experiments.Bandwidth(opt); res.Users == 0 {
			b.Fatal("no users")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationProfileCache compares personalization-job assembly with
// and without the serialized-profile cache.
func BenchmarkAblationProfileCache(b *testing.B) {
	build := func(disable bool) *hyrec.Engine {
		cfg := hyrec.DefaultConfig()
		cfg.DisableProfileCache = disable
		engine := hyrec.NewEngine(cfg)
		for u := core.UserID(0); u < 200; u++ {
			for j := 0; j < 100; j++ {
				engine.Rate(tctx, u, core.ItemID((int(u)*13+j*7)%1000), true)
			}
		}
		// Warm the KNN table for dense candidate sets.
		for u := core.UserID(0); u < 200; u++ {
			hood := make([]core.UserID, 10)
			for d := range hood {
				hood[d] = (u + core.UserID(d) + 1) % 200
			}
			engine.KNN().Put(u, hood)
		}
		return engine
	}
	b.Run("cache=on", func(b *testing.B) {
		engine := build(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.JobPayload(core.UserID(i % 200)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache=off", func(b *testing.B) {
		engine := build(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.JobPayload(core.UserID(i % 200)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGzipLevel quantifies the BestSpeed-vs-default trade-off
// on a realistic personalization job.
func BenchmarkAblationGzipLevel(b *testing.B) {
	engine := hyrec.NewEngine(hyrec.DefaultConfig())
	for u := core.UserID(0); u < 121; u++ {
		for j := 0; j < 100; j++ {
			engine.Rate(tctx, u, core.ItemID((int(u)*17+j*3)%1000), true)
		}
	}
	jsonBody, _, err := engine.JobPayload(0)
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range []struct {
		name string
		lv   wire.GzipLevel
	}{
		{"huffman-only", wire.GzipHuffmanOnly},
		{"best-speed", wire.GzipBestSpeed},
		{"default", wire.GzipDefault},
		{"best-compression", wire.GzipBestCompact},
	} {
		b.Run(level.name, func(b *testing.B) {
			b.SetBytes(int64(len(jsonBody)))
			var gzLen int
			for i := 0; i < b.N; i++ {
				gz, err := wire.Compress(jsonBody, level.lv)
				if err != nil {
					b.Fatal(err)
				}
				gzLen = len(gz)
			}
			b.ReportMetric(float64(gzLen), "gzip-bytes")
		})
	}
}

// BenchmarkAblationProfileSnapshot compares the immutable copy-on-write
// profile against a mutex-guarded mutable map profile under a concurrent
// read-mostly workload (the server's actual access pattern).
func BenchmarkAblationProfileSnapshot(b *testing.B) {
	const items = 150
	b.Run("immutable-cow", func(b *testing.B) {
		p := core.NewProfile(1)
		for j := 0; j < items; j++ {
			p = p.WithRating(core.ItemID(j*3), true)
		}
		var mu sync.RWMutex // snapshot pointer swap
		cur := p
		b.RunParallel(func(pb *testing.PB) {
			other := core.NewProfile(2).WithRating(3, true)
			i := 0
			for pb.Next() {
				i++
				if i%100 == 0 {
					mu.Lock()
					cur = cur.WithRating(core.ItemID(i%1000), true)
					mu.Unlock()
					continue
				}
				mu.RLock()
				snapshot := cur
				mu.RUnlock()
				(core.Cosine{}).Score(snapshot, other)
			}
		})
	})
	b.Run("locked-mutable", func(b *testing.B) {
		liked := map[core.ItemID]bool{}
		for j := 0; j < items; j++ {
			liked[core.ItemID(j*3)] = true
		}
		var mu sync.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			other := map[core.ItemID]bool{3: true}
			i := 0
			for pb.Next() {
				i++
				if i%100 == 0 {
					mu.Lock()
					liked[core.ItemID(i%1000)] = true
					mu.Unlock()
					continue
				}
				// Reader must hold the lock across the whole similarity
				// computation — the cost the immutable design avoids.
				mu.RLock()
				count := 0
				for item := range other {
					if liked[item] {
						count++
					}
				}
				_ = count
				mu.RUnlock()
			}
		})
	})
}

// BenchmarkExtensionPrivacy regenerates the differential-privacy ablation
// (quality vs ε; an extension the paper's conclusion proposes).
func BenchmarkExtensionPrivacy(b *testing.B) {
	opt := benchOpts()
	opt.Scale = 0.03
	for i := 0; i < b.N; i++ {
		if rows := experiments.PrivacyAblation(opt); len(rows) < 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkExtensionStaleness regenerates the TiVo-style item-based-CF
// staleness comparison (Section 2.4's architectural argument).
func BenchmarkExtensionStaleness(b *testing.B) {
	opt := benchOpts()
	opt.Scale = 0.03
	for i := 0; i < b.N; i++ {
		if rows := experiments.StalenessStudy(opt); len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkExtensionChurn regenerates the availability study (HyRec vs P2P
// under machine churn, Section 2.4's availability argument).
func BenchmarkExtensionChurn(b *testing.B) {
	opt := benchOpts()
	opt.Scale = 0.03
	for i := 0; i < b.N; i++ {
		if rows := experiments.ChurnStudy(opt); len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkAblationSampler regenerates the candidate-rule dissection
// (full vs no-random vs random-only — the Section 3.1 design claims).
func BenchmarkAblationSampler(b *testing.B) {
	opt := benchOpts()
	opt.Scale = 0.03
	for i := 0; i < b.N; i++ {
		if rows := experiments.SamplerAblation(opt); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationWebWorkers measures the widget's web-worker mode: the
// same personalization job executed with 1, 2, and 4 parallel workers
// (the HTML5-threads improvement the paper's conclusion anticipates).
func BenchmarkAblationWebWorkers(b *testing.B) {
	engine := hyrec.NewEngine(hyrec.DefaultConfig())
	for u := core.UserID(0); u < 121; u++ {
		for j := 0; j < 200; j++ {
			engine.Rate(tctx, u, core.ItemID((int(u)*17+j*3)%2000), true)
		}
	}
	for u := core.UserID(0); u < 121; u++ {
		hood := make([]core.UserID, 10)
		for d := range hood {
			hood[d] = (u + core.UserID(d) + 1) % 121
		}
		engine.KNN().Put(u, hood)
	}
	job, err := engine.Job(tctx, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			w := hyrec.NewWidget(hyrec.WithWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res, _ := w.Execute(job); len(res.Neighbors) == 0 {
					b.Fatal("no neighbors")
				}
			}
		})
	}
}

// BenchmarkAblationPrivacyPerturb measures the raw cost of one
// randomized-response release at several ε (the per-candidate overhead a
// privacy-enabled deployment pays on the job-assembly path).
func BenchmarkAblationPrivacyPerturb(b *testing.B) {
	profile := core.NewProfile(1)
	for j := 0; j < 100; j++ {
		profile = profile.WithRating(core.ItemID(j*17%1700), true)
	}
	for _, eps := range []float64{0.5, 1, 4} {
		b.Run(benchNameF("eps", eps), func(b *testing.B) {
			rr, err := privacy.NewRandomizedResponse(eps, 1700, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rr.Perturb(profile)
			}
		})
	}
}

func benchName(key string, v int) string      { return fmt.Sprintf("%s=%d", key, v) }
func benchNameF(key string, v float64) string { return fmt.Sprintf("%s=%g", key, v) }

// BenchmarkAblationFeistelVsMap compares the O(1)-memory Feistel
// anonymizer against a materialised map-based shuffle.
func BenchmarkAblationFeistelVsMap(b *testing.B) {
	const population = 100_000
	b.Run("feistel", func(b *testing.B) {
		anon := core.NewAnonymizer(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			anon.AliasUser(core.UserID(i % population))
		}
	})
	b.Run("stored-map", func(b *testing.B) {
		fwd := make(map[core.UserID]core.UserID, population)
		perm := make([]core.UserID, population)
		for i := range perm {
			perm[i] = core.UserID(i)
		}
		// Fisher–Yates with a fixed LCG for determinism.
		state := uint64(42)
		for i := population - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i, v := range perm {
			fwd[core.UserID(i)] = v
		}
		var mu sync.RWMutex
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.RLock()
			_ = fwd[core.UserID(i%population)]
			mu.RUnlock()
		}
	})
}

// BenchmarkClusterHTTPOnline drives the fan-out front-end with the
// ab-style load generator, spreading /online requests over a population
// that spans every partition — the HTTP view of the cluster throughput
// comparison (in-process view: BenchmarkClusterScaling).
func BenchmarkClusterHTTPOnline(b *testing.B) {
	for _, parts := range []int{1, 4} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			cfg := hyrec.DefaultConfig()
			c := hyrec.NewCluster(cfg, parts)
			uids := make([]uint32, 200)
			for i := range uids {
				u := core.UserID(i + 1)
				uids[i] = uint32(u)
				for j := 0; j < 10; j++ {
					c.Rate(tctx, u, core.ItemID(i%7+j), true)
				}
			}
			ts := httptest.NewServer(hyrec.ClusterHandler(c, 0))
			defer ts.Close()
			b.ResetTimer()
			res := loadgen.Run(loadgen.UserTarget(ts.URL+"/online?uid=%d", uids), b.N, 8)
			if res.Failures > 0 {
				b.Fatalf("%d/%d requests failed", res.Failures, res.Requests)
			}
		})
	}
}

// BenchmarkClusterScaling runs the in-process Rate+Job throughput
// comparison (1 vs 4 vs 16 partitions) at reduced scale with a short
// measurement window.
func BenchmarkClusterScaling(b *testing.B) {
	opt := benchOpts()
	opt.Window = 100 * time.Millisecond
	for i := 0; i < b.N; i++ {
		if pts := experiments.ClusterScaling(opt); len(pts) != 3 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkClusterRecall runs the cluster-vs-single-engine quality
// replay at reduced scale.
func BenchmarkClusterRecall(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if rows := experiments.ClusterRecall(opt); len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}
