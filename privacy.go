package hyrec

import "hyrec/internal/privacy"

// Privacy extension (see internal/privacy): ε-local-differential-privacy
// perturbation of candidate profiles, the "stronger privacy mechanism" the
// paper's concluding remarks propose. Plug a mechanism into
// Config.CandidateFilter and every profile leaving the server is released
// under randomized response.

type (
	// RandomizedResponse is the ε-LDP profile perturbation mechanism.
	RandomizedResponse = privacy.RandomizedResponse
	// PrivacyOption customises a RandomizedResponse.
	PrivacyOption = privacy.Option
	// PrivacyAccountant tracks per-user privacy spend under sequential
	// composition.
	PrivacyAccountant = privacy.Accountant
)

// NewRandomizedResponse builds an ε-LDP mechanism over the item universe
// [0, numItems). Use it as
//
//	rr, _ := hyrec.NewRandomizedResponse(1.0, numItems, seed)
//	cfg.CandidateFilter = rr.Filter()
func NewRandomizedResponse(epsilon float64, numItems uint32, seed int64, opts ...PrivacyOption) (*RandomizedResponse, error) {
	return privacy.NewRandomizedResponse(epsilon, numItems, seed, opts...)
}

// WithPermanentNoise switches the mechanism to RAPPOR-style permanent
// randomized response: one noise draw per profile version, replayed on
// every release, so repeat observations cannot average the noise away.
func WithPermanentNoise() PrivacyOption { return privacy.WithMemo() }

// NewPrivacyAccountant tracks cumulative ε spend per user at the given
// per-release epsilon.
func NewPrivacyAccountant(epsilonPerRelease float64) *PrivacyAccountant {
	return privacy.NewAccountant(epsilonPerRelease)
}
