// Newsfeed: a Digg-style personalized feed served over real HTTP — the
// paper's motivating scenario (a small content provider with many users).
// A HyRec server runs on a local port while simulated browser widgets
// post votes and execute personalization jobs; the example then prints
// each user's personalized front page and the server's traffic stats.
//
//	go run ./examples/newsfeed
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"hyrec"
)

// story is a news item in our tiny catalogue.
type story struct {
	id    hyrec.ItemID
	topic string
	title string
}

func main() {
	catalogue := buildCatalogue()

	engine := hyrec.NewEngine(hyrec.DefaultConfig())
	srv := hyrec.NewHTTPServer(engine, 0)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	fmt.Printf("hyrec server on %s\n", ts.URL)

	// 30 users in two interest communities (tech vs sports) vote on
	// stories through the web API, each running the widget loop.
	rng := rand.New(rand.NewSource(7))
	// Size the idle pool explicitly: the zero-value transport keeps only
	// 2 idle connections per host, so a busy loop against one server
	// would churn through fresh dials.
	client := &http.Client{Transport: &http.Transport{
		DisableCompression:  true,
		MaxIdleConns:        32,
		MaxIdleConnsPerHost: 32,
	}}
	widget := hyrec.NewWidget()
	lastRecs := map[hyrec.UserID][]hyrec.ItemID{}

	for round := 0; round < 6; round++ {
		for u := 0; u < 30; u++ {
			uid := hyrec.UserID(u)
			topic := "tech"
			if u%2 == 1 {
				topic = "sports"
			}
			st := pickStory(rng, catalogue, topic)

			// Vote + request a personalization job in one call.
			url := fmt.Sprintf("%s/online?uid=%d&item=%d&liked=true", ts.URL, uid, st.id)
			resp, err := client.Get(url)
			if err != nil {
				log.Fatal(err)
			}
			gz, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				log.Fatal(err)
			}

			// The "browser" computes recommendations and new neighbors.
			res, _, err := widget.ExecutePayload(gz)
			if err != nil {
				log.Fatal(err)
			}
			body, _ := json.Marshal(res)
			post, err := client.Post(ts.URL+"/neighbors", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, post.Body)
			post.Body.Close()

			// Resolve pseudonymised recommendations via the server.
			recResp, err := client.Get(fmt.Sprintf("%s/recommendations?uid=%d", ts.URL, uid))
			if err != nil {
				log.Fatal(err)
			}
			var recs []hyrec.ItemID
			json.NewDecoder(recResp.Body).Decode(&recs)
			recResp.Body.Close()
			lastRecs[uid] = recs
		}
	}

	// Show two users' personalized front pages.
	for _, uid := range []hyrec.UserID{0, 1} {
		topic := "tech"
		if uid%2 == 1 {
			topic = "sports"
		}
		fmt.Printf("\nfront page for user %d (%s reader):\n", uid, topic)
		inTopic := 0
		for i, item := range lastRecs[uid] {
			if i >= 5 {
				break
			}
			st := catalogue[item]
			fmt.Printf("  %d. [%s] %s\n", i+1, st.topic, st.title)
			if st.topic == topic {
				inTopic++
			}
		}
		fmt.Printf("  → %d/5 recommendations match the user's community\n", inTopic)
	}

	// Server-side economics: how little crossed the wire.
	m := engine.Meter()
	fmt.Printf("\nserver traffic: %d jobs, %.1f kB gzip total (%.0f%% saved vs raw JSON)\n",
		m.Messages(), float64(m.GzipBytes())/1024,
		100*(1-float64(m.GzipBytes())/float64(m.JSONBytes())))
}

func buildCatalogue() map[hyrec.ItemID]story {
	topics := map[string][]string{
		"tech": {
			"New CPU breaks efficiency record", "Browser engines compared",
			"Open-source DB hits 1.0", "The state of WebAssembly",
			"Self-hosting your own cloud", "A tour of modern compilers",
			"Debugging distributed systems", "Faster JSON parsing tricks",
		},
		"sports": {
			"Championship final recap", "Transfer window surprises",
			"Marathon training science", "Underdogs take the cup",
			"Inside the locker room", "Analytics changes scouting",
			"Season preview: dark horses", "The greatest comeback ever",
		},
	}
	out := map[hyrec.ItemID]story{}
	id := hyrec.ItemID(1)
	for topic, titles := range topics {
		for _, title := range titles {
			out[id] = story{id: id, topic: topic, title: title}
			id++
		}
	}
	return out
}

func pickStory(rng *rand.Rand, catalogue map[hyrec.ItemID]story, topic string) story {
	for {
		id := hyrec.ItemID(1 + rng.Intn(len(catalogue)))
		if st, ok := catalogue[id]; ok && st.topic == topic {
			return st
		}
	}
}
