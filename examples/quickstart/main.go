// Quickstart: the smallest useful HyRec deployment — one in-process
// engine, one widget, a handful of users — showing the full
// rate → job → execute → apply loop and the resulting recommendations.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hyrec"
)

func main() {
	ctx := context.Background()
	engine := hyrec.NewEngine(hyrec.DefaultConfig())
	widget := hyrec.NewWidget()

	// Three users; alice and bob share tastes, carol is different.
	type like struct {
		user hyrec.UserID
		item hyrec.ItemID
	}
	likes := []like{
		{1, 100}, {1, 101}, {1, 102}, // alice: sci-fi
		{2, 100}, {2, 101}, {2, 103}, // bob: sci-fi + one more
		{3, 900}, {3, 901}, // carol: documentaries
	}
	for _, l := range likes {
		engine.Rate(ctx, l.user, l.item, true)
	}

	// Alice visits the site: the server builds her a personalization job…
	job, err := engine.Job(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server sent alice a job with %d candidate profiles (k=%d, r=%d)\n",
		len(job.Candidates), job.K, job.R)

	// …her browser executes it (KNN selection + item recommendation)…
	result, timing := widget.Execute(job)
	fmt.Printf("widget ran KNN+recommend in %v\n", timing.Total)

	// …and the server folds the result back into its KNN table.
	recs, err := engine.ApplyResult(ctx, result)
	if err != nil {
		log.Fatal(err)
	}
	hood, _ := engine.Neighbors(ctx, 1)
	fmt.Printf("alice's neighbors: %v\n", hood)
	fmt.Printf("recommended to alice: %v\n", recs)
	// Bob liked item 103 and shares alice's taste, so 103 must appear.
	for _, item := range recs {
		if item == 103 {
			fmt.Println("✓ collaborative filtering found bob's extra pick")
		}
	}
}
