// Webworkers: the widget's parallel execution mode — the Go analogue of
// the HTML5 web-worker threads the paper's conclusion anticipates. One
// large personalization job is executed by a sequential widget and by
// widgets with 2 and 4 workers; results are identical and the wall-clock
// time drops on multi-core clients.
//
//	go run ./examples/webworkers
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"
	"time"

	"hyrec"
)

func main() {
	ctx := context.Background()
	// A worst-case job: large candidate set (k=20 → up to 2k+k² = 440
	// candidates before dedup), profiles of 200 items.
	cfg := hyrec.DefaultConfig()
	cfg.K = 20
	engine := hyrec.NewEngine(cfg)
	const users = 300
	for u := hyrec.UserID(0); u < users; u++ {
		for j := 0; j < 200; j++ {
			engine.Rate(ctx, u, hyrec.ItemID((int(u)*17+j*3)%3000), true)
		}
	}
	for u := hyrec.UserID(0); u < users; u++ {
		hood := make([]hyrec.UserID, cfg.K)
		for d := range hood {
			hood[d] = (u + hyrec.UserID(d) + 1) % users
		}
		engine.KNN().Put(u, hood)
	}
	job, err := engine.Job(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d candidate profiles, k=%d, r=%d\n\n", len(job.Candidates), job.K, job.R)

	var baseline *hyrec.Result
	for _, workers := range []int{1, 2, 4} {
		w := hyrec.NewWidget(hyrec.WithWorkers(workers))
		// Median of several runs to de-noise scheduling.
		const runs = 15
		times := make([]time.Duration, 0, runs)
		var res *hyrec.Result
		for i := 0; i < runs; i++ {
			start := time.Now()
			res, _ = w.Execute(job)
			times = append(times, time.Since(start))
		}
		if baseline == nil {
			baseline = res
		} else if !reflect.DeepEqual(baseline, res) {
			log.Fatalf("workers=%d produced different results", workers)
		}
		fmt.Printf("workers=%d  median widget time %v\n", workers, median(times))
	}
	fmt.Println("\n✓ all worker counts returned identical neighbors and recommendations")
}

func median(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}
