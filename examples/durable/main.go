// Durable: server state that survives restarts. The engine's Profile and
// KNN tables are captured into a checksummed snapshot file, a "new
// process" restores them, and the converged neighbourhoods are identical —
// no re-convergence from random KNN after a deploy or crash.
//
//	go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"hyrec"
)

func main() {
	dir, err := os.MkdirTemp("", "hyrec-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "state.snap")

	// --- Process 1: serve traffic, converge, snapshot, "crash". ---
	ctx := context.Background()
	engine := hyrec.NewEngine(hyrec.DefaultConfig())
	widget := hyrec.NewWidget()
	for u := hyrec.UserID(1); u <= 30; u++ {
		for i := 0; i < 8; i++ {
			// Three taste communities of ten users each.
			base := int(u-1) / 10 * 100
			engine.Rate(ctx, u, hyrec.ItemID(base+(int(u)+i)%12), true)
		}
	}
	for round := 0; round < 6; round++ {
		for u := hyrec.UserID(1); u <= 30; u++ {
			job, err := engine.Job(ctx, u)
			if err != nil {
				log.Fatal(err)
			}
			res, _ := widget.Execute(job)
			if _, err := engine.ApplyResult(ctx, res); err != nil {
				log.Fatal(err)
			}
		}
	}
	before, _ := engine.Neighbors(ctx, 7)
	if err := hyrec.SaveSnapshot(path, hyrec.CaptureSnapshot(engine)); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("process 1: converged neighbors of user 7: %v\n", before)
	fmt.Printf("process 1: saved %d users to %s (%d bytes), exiting\n",
		engine.Profiles().Len(), filepath.Base(path), info.Size())

	// --- Process 2: fresh engine, restore, carry on where we left off. ---
	engine2 := hyrec.NewEngine(hyrec.DefaultConfig())
	snap, err := hyrec.LoadSnapshot(path)
	if err != nil {
		log.Fatal(err) // corrupt snapshots fail here, loudly
	}
	if err := hyrec.RestoreSnapshot(engine2, snap); err != nil {
		log.Fatal(err)
	}
	after, _ := engine2.Neighbors(ctx, 7)
	fmt.Printf("process 2: restored %d users; neighbors of user 7: %v\n",
		engine2.Profiles().Len(), after)

	if reflect.DeepEqual(before, after) {
		fmt.Println("✓ KNN state survived the restart byte-for-byte")
	} else {
		fmt.Println("✗ neighborhoods diverged after restore")
		os.Exit(1)
	}
}
