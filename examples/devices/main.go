// Devices: what HyRec costs the client — the same personalization job
// executed on the reference laptop, on a loaded laptop, and on a
// smartphone-class device, echoing the paper's Figures 12 and 13 ("HyRec
// can exploit clients with small mobile devices without impacting user
// activities").
//
//	go run ./examples/devices
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hyrec"
)

func main() {
	ctx := context.Background()
	// Build a worst-case personalization job: full candidate set for
	// k=10 (120 profiles), 100 items per profile.
	engine := hyrec.NewEngine(hyrec.DefaultConfig())
	for u := hyrec.UserID(0); u < 121; u++ {
		for j := 0; j < 100; j++ {
			engine.Rate(ctx, u, hyrec.ItemID((int(u)*37+j*11)%1000), true)
		}
	}
	// Pre-fill the KNN table so the sampler produces a dense set.
	for u := hyrec.UserID(0); u < 121; u++ {
		hood := make([]hyrec.UserID, 0, 10)
		for d := hyrec.UserID(1); d <= 10; d++ {
			hood = append(hood, (u+d)%121)
		}
		engine.KNN().Put(u, hood)
	}
	_, gz, err := engine.JobPayload(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("personalization job: %.1f kB on the wire (gzip)\n\n", float64(len(gz))/1024)

	devices := []struct {
		label  string
		device hyrec.Device
	}{
		{"laptop (idle)", hyrec.Laptop()},
		{"laptop (50% CPU busy)", hyrec.Laptop().WithLoad(0.5)},
		{"smartphone (idle)", hyrec.Smartphone()},
		{"smartphone (50% CPU busy)", hyrec.Smartphone().WithLoad(0.5)},
	}
	fmt.Printf("%-28s %12s %12s %12s\n", "device", "inflate", "knn+rec", "total")
	for _, d := range devices {
		w := hyrec.NewWidget(hyrec.WithDevice(d.device))
		// Average a few runs for stable numbers.
		var inflate, compute, total time.Duration
		const reps = 20
		for i := 0; i < reps; i++ {
			_, timing, err := w.ExecutePayload(gz)
			if err != nil {
				log.Fatal(err)
			}
			inflate += timing.Decompress + timing.Decode
			compute += timing.KNN + timing.Recommend
			total += timing.Total
		}
		fmt.Printf("%-28s %12s %12s %12s\n", d.label,
			(inflate / reps).Round(10*time.Microsecond),
			(compute / reps).Round(10*time.Microsecond),
			(total / reps).Round(10*time.Microsecond))
	}

	fmt.Println("\nwidget keeps no state: the same user can roam devices freely.")
}
