// Privatefeed: a news feed whose operator enables differential privacy on
// the profiles HyRec ships to browsers — the extension the paper's
// conclusion proposes for privacy-sensitive deployments ("recommending a
// doctor to a patient").
//
// Every candidate profile leaving the server passes through ε-randomized
// response: each liked item is reported truthfully with probability
// e^ε/(1+e^ε), so no widget ever sees another user's true item set. A
// privacy accountant tracks the cumulative spend per user. The demo shows
// that recommendations still work (communities are found through the
// noise) and what the noise costs.
//
//	go run ./examples/privatefeed
package main

import (
	"context"
	"fmt"
	"log"

	"hyrec"
)

const (
	numItems = 200
	// ε=3 is a realistic deployment point: flip probability ≈ 4.7%, so a
	// candidate profile of ~6 true items carries ~9 spurious ones — enough
	// noise to deny confident inference of any single item, little enough
	// that communities of a few dozen users still dominate the popularity
	// tallies. Lower ε needs proportionally larger communities (see the
	// `hyrec-bench -exp privacy` sweep for the full trade-off curve).
	epsilon       = 3.0
	usersPerGroup = 25
)

func main() {
	ctx := context.Background()
	// Two mechanisms: the filter the engine applies, and the accountant
	// that charges each release.
	rr, err := hyrec.NewRandomizedResponse(epsilon, numItems, 42)
	if err != nil {
		log.Fatal(err)
	}
	accountant := hyrec.NewPrivacyAccountant(rr.Epsilon())

	cfg := hyrec.DefaultConfig()
	cfg.CandidateFilter = accountant.Guard(rr.Filter())
	engine := hyrec.NewEngine(cfg)
	widget := hyrec.NewWidget()

	// A health-news site with two communities: users 1–25 follow
	// cardiology stories (items 10–19), users 26–50 follow nutrition
	// (items 50–59).
	last := hyrec.UserID(2 * usersPerGroup)
	for u := hyrec.UserID(1); u <= last; u++ {
		base := 10
		if int(u) > usersPerGroup {
			base = 50
		}
		for i := 0; i < 6; i++ {
			engine.Rate(ctx, u, hyrec.ItemID(base+(int(u)+i)%10), true)
		}
	}

	// Let everyone iterate a few times so neighbourhoods converge despite
	// the randomized-response noise.
	for round := 0; round < 8; round++ {
		for u := hyrec.UserID(1); u <= last; u++ {
			job, err := engine.Job(ctx, u)
			if err != nil {
				log.Fatal(err)
			}
			res, _ := widget.Execute(job)
			if _, err := engine.ApplyResult(ctx, res); err != nil {
				log.Fatal(err)
			}
		}
	}

	// User 1's final request.
	job, err := engine.Job(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, _ := widget.Execute(job)
	recs, err := engine.ApplyResult(ctx, res)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ε per release: %.2f (flip probability %.3f)\n", rr.Epsilon(), rr.FlipProb())
	hood, _ := engine.Neighbors(ctx, 1)
	fmt.Printf("user 1 neighbors: %v\n", hood)
	fmt.Printf("user 1 recommendations: %v\n", recs)

	inCardio := 0
	for _, item := range recs {
		if item >= 10 && item < 20 {
			inCardio++
		}
	}
	fmt.Printf("%d of %d recommendations are cardiology stories (community found through the noise)\n",
		inCardio, len(recs))
	fmt.Printf("privacy spend: user 1 released %d perturbed profiles (%.1fε total); max across users %.1fε\n",
		accountant.Releases(1), accountant.Spent(1), accountant.MaxSpent())
	fmt.Println("note: with fresh noise the budget grows per release — switch to")
	fmt.Println("hyrec.WithPermanentNoise() to pin one release per profile version.")
}
