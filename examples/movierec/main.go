// Movierec: a MovieLens-style offline evaluation — generate a rating
// trace with community structure, replay the training 80% through HyRec,
// then measure recommendation quality on the held-out 20% exactly as the
// paper's Section 5.3 does, comparing against the periodic Offline-Ideal
// baseline.
//
//	go run ./examples/movierec
package main

import (
	"fmt"
	"log"
	"time"

	"hyrec"
	"hyrec/internal/baseline"
	"hyrec/internal/core"
	"hyrec/internal/dataset"
	"hyrec/internal/metrics"
)

func main() {
	// A scaled-down ML1 keeps the example fast; raise the factor to
	// approach the paper's workload.
	cfg := dataset.Scaled(dataset.ML1Config(), 0.1)
	trace, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := dataset.ComputeStats(trace)
	fmt.Println("workload:", stats)

	events := dataset.Binarize(trace)
	train, test := dataset.Split(events, 0.8)
	fmt.Printf("split: %d training / %d test events\n\n", len(train), len(test))

	const maxN = 10
	sysCfg := hyrec.DefaultConfig()
	sysCfg.K = 10

	fmt.Println("evaluating HyRec (online, browser-side KNN)...")
	hy := metrics.EvaluateQuality(hyrec.NewSystem(sysCfg), train, test, maxN)

	fmt.Println("evaluating Offline-Ideal with a 24h back-end period...")
	off := metrics.EvaluateQuality(
		baseline.NewOfflineIdeal(10, 24*time.Hour, core.Cosine{}), train, test, maxN)

	fmt.Printf("\nrecommendation quality (hits among %d positive test ratings):\n", hy.Positives)
	fmt.Printf("%4s %8s %14s\n", "n", "hyrec", "offline p=24h")
	for n := 1; n <= maxN; n++ {
		fmt.Printf("%4d %8d %14d\n", n, hy.Hits[n-1], off.Hits[n-1])
	}
	h10, o10 := hy.Recall(maxN), off.Recall(maxN)
	fmt.Printf("\nrecall@%d: hyrec %.3f vs offline %.3f", maxN, h10, o10)
	if o10 > 0 {
		fmt.Printf(" (%+.0f%%)", 100*(h10-o10)/o10)
	}
	fmt.Println()
}
