#!/usr/bin/env bash
# Smoke test: build every binary, boot a real hyrec-server, drive it for
# ~2 seconds through the typed client (hyrec-widget) and the raw /v1
# endpoints, and fail fast on any protocol regression.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
trap 'kill ${SERVER_PID:-} ${SHED_PID:-} ${SCHED_PID:-} ${SNAP_PID:-} ${SCALE_PID:-} ${FLEET_PID:-} ${NODE1_PID:-} ${NODE2_PID:-} ${NODE3_PID:-} 2>/dev/null || true; rm -rf "$BIN"' EXIT

echo "--- building all cmd/ and examples/ binaries"
go build -o "$BIN/" ./cmd/...
for ex in examples/*/; do
  go build -o "$BIN/example-$(basename "$ex")" "./$ex"
done

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"

FRAME_ADDR="127.0.0.1:18090"
echo "--- starting hyrec-server on $ADDR (framed listener on $FRAME_ADDR)"
"$BIN/hyrec-server" -addr "$ADDR" -partitions 2 -rotate 0 -frame-addr "$FRAME_ADDR" &
SERVER_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SERVER_PID 2>/dev/null; then
    echo "server died during startup" >&2; exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

echo "--- driving the full widget loop through the typed client"
"$BIN/hyrec-widget" -server "$BASE" -users 20 -requests 3

echo "--- framed transport: widget loop + worker over the binary listener"
# The same loop upgraded onto the framed lane: rate batches, job
# fetches, results and acks ride one multiplexed binary connection.
"$BIN/hyrec-widget" -server "$BASE" -framed "$FRAME_ADDR" -users 20 -requests 2
# A framed pull-worker drains whatever staleness the loops left behind.
"$BIN/hyrec-widget" -server "$BASE" -framed "$FRAME_ADDR" -worker 1 -work-duration 2s
STATS=$(curl -fsS "$BASE/stats")
# The framed listener must have seen connections and moved real bytes.
echo "$STATS" | grep -Eq '"frame_conns":[0-9]' \
  || { echo "/stats missing framed-transport gauges: $STATS" >&2; exit 1; }
echo "$STATS" | grep -Eq '"frame_bytes_total":[1-9]' \
  || { echo "framed listener moved no bytes: $STATS" >&2; exit 1; }
curl -fsS "$BASE/metrics" | grep -q '^hyrec_frame_bytes_total [1-9]' \
  || { echo "/metrics shows no framed bytes" >&2; exit 1; }

echo "--- checking the /v1 protocol surface"
# Batch rate.
ACCEPTED=$(curl -fsS -X POST "$BASE/v1/rate" -H 'Content-Type: application/json' \
  -d '{"ratings":[{"uid":1,"item":5,"liked":true},{"uid":2,"item":5,"liked":true}]}')
echo "$ACCEPTED" | grep -q '"accepted":2' || { echo "bad /v1/rate response: $ACCEPTED" >&2; exit 1; }
# Job (gzip-negotiated) decodes.
curl -fsS -H 'Accept-Encoding: gzip' "$BASE/v1/job?uid=1" | gunzip | grep -q '"uid"'
# Recs and neighbors answer.
curl -fsS "$BASE/v1/recs?uid=1" | grep -q '"recs"'
curl -fsS "$BASE/v1/neighbors?uid=1" | grep -q '"neighbors"'
# Error envelope shape.
ENV=$(curl -sS "$BASE/v1/recs")
echo "$ENV" | grep -q '"code":"bad_request"' || { echo "bad error envelope: $ENV" >&2; exit 1; }
# Legacy endpoints still alive.
curl -fsS "$BASE/stats" | grep -q '"users"'

echo "--- graceful shutdown"
kill -TERM $SERVER_PID
wait $SERVER_PID

echo "--- admission control: a saturated worker class sheds with a typed 429"
SHED_ADDR="127.0.0.1:18088"
SHED_BASE="http://$SHED_ADDR"
"$BIN/hyrec-server" -addr "$SHED_ADDR" -rotate 0 \
  -max-inflight-worker 1 -lease-ttl 60s &
SHED_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$SHED_BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SHED_PID 2>/dev/null; then
    echo "shed server died during startup" >&2; exit 1
  fi
  sleep 0.1
done

# Seed one stale user and lease its job out (never acked, 60s TTL): the
# queue is now empty, so the next long-poll parks — holding the only
# worker admission slot for its whole wait window.
curl -fsS -X POST "$SHED_BASE/v1/rate" -H 'Content-Type: application/json' \
  -d '{"ratings":[{"uid":1,"item":2,"liked":true}]}' >/dev/null
for i in $(seq 1 20); do
  CODE=$(curl -s -o /dev/null -w '%{http_code}' "$SHED_BASE/v1/job?worker=1")
  [ "$CODE" = "204" ] && break
done
curl -s "$SHED_BASE/v1/job?worker=1&wait=10s" >/dev/null &
PARKED_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$SHED_BASE/stats" | grep -q '"inflight_worker":1'; then break; fi
  sleep 0.1
done

# The second poll must shed, not queue: 429 status, Retry-After header,
# and the typed overloaded error envelope.
RESP=$(curl -s -D - "$SHED_BASE/v1/job?worker=1")
echo "$RESP" | grep -q ' 429 ' || { echo "saturated worker poll was not shed: $RESP" >&2; exit 1; }
echo "$RESP" | grep -qi '^Retry-After:' || { echo "shed response missing Retry-After: $RESP" >&2; exit 1; }
echo "$RESP" | grep -q '"code":"overloaded"' || { echo "shed envelope not typed overloaded: $RESP" >&2; exit 1; }
curl -fsS "$SHED_BASE/stats" | grep -Eq '"shed_total":[1-9]' \
  || { echo "/stats shed_total never moved" >&2; exit 1; }
curl -fsS "$SHED_BASE/metrics" | grep -q '^hyrec_shed_total [1-9]' \
  || { echo "/metrics missing shed counter" >&2; exit 1; }

kill $PARKED_PID 2>/dev/null || true
wait $PARKED_PID 2>/dev/null || true
kill -TERM $SHED_PID
wait $SHED_PID

echo "--- async scheduler: churny worker abandons a lease, server re-issues or falls back"
SCHED_ADDR="127.0.0.1:18081"
SCHED_BASE="http://$SCHED_ADDR"
"$BIN/hyrec-server" -addr "$SCHED_ADDR" -rotate 0 \
  -lease-ttl 2s -lease-retries 1 -fallback-workers 2 &
SCHED_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$SCHED_BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SCHED_PID 2>/dev/null; then
    echo "scheduler server died during startup" >&2; exit 1
  fi
  sleep 0.1
done

# Seed staleness: ratings enqueue KNN refreshes for three users.
curl -fsS -X POST "$SCHED_BASE/v1/rate" -H 'Content-Type: application/json' \
  -d '{"ratings":[{"uid":1,"item":3,"liked":true},{"uid":2,"item":3,"liked":true},{"uid":3,"item":4,"liked":true}]}' >/dev/null

# A fully churny worker leases jobs and abandons every one of them
# (politely, via /v1/ack done=false).
"$BIN/hyrec-widget" -server "$SCHED_BASE" -worker 1 -abandon 1 -work-duration 1s

STATS=$(curl -fsS "$SCHED_BASE/stats")
echo "$STATS" | grep -Eq '"sched_(reissued|fallback_runs)":[1-9]' \
  || { echo "abandoned lease neither re-issued nor absorbed by fallback: $STATS" >&2; exit 1; }

# A steady worker fleet (plus the fallback pool) drains the backlog.
"$BIN/hyrec-widget" -server "$SCHED_BASE" -worker 2 -work-duration 2s
STATS=$(curl -fsS "$SCHED_BASE/stats")
echo "$STATS" | grep -Eq '"sched_acked":[1-9]|"sched_fallback_runs":[1-9]' \
  || { echo "no job ever completed under the scheduler: $STATS" >&2; exit 1; }
echo "$STATS" | grep -Eq '"sched_pending":0' \
  || { echo "staleness queue not drained: $STATS" >&2; exit 1; }
echo "$STATS" | grep -Eq '"sched_fallback_queued":0' \
  || { echo "fallback backlog not drained: $STATS" >&2; exit 1; }

kill -TERM $SCHED_PID
wait $SCHED_PID

echo "--- cluster snapshots: a churned 2-partition cluster survives a restart"
SNAP_ADDR="127.0.0.1:18082"
SNAP_BASE="http://$SNAP_ADDR"
SNAP_FILE="$BIN/cluster-state.snap"
"$BIN/hyrec-server" -addr "$SNAP_ADDR" -partitions 2 -rotate 0 -snapshot "$SNAP_FILE" &
SNAP_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$SNAP_BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SNAP_PID 2>/dev/null; then
    echo "snapshot server died during startup" >&2; exit 1
  fi
  sleep 0.1
done

# Churn: ratings plus full widget cycles populate both partitions' tables.
"$BIN/hyrec-widget" -server "$SNAP_BASE" -users 20 -requests 2
USERS_BEFORE=$(curl -fsS "$SNAP_BASE/stats" | sed -n 's/.*"users":\([0-9]*\).*/\1/p')
[ "$USERS_BEFORE" -gt 0 ] || { echo "no users before restart" >&2; exit 1; }

# Graceful shutdown writes one frame per partition.
kill -TERM $SNAP_PID
wait $SNAP_PID
for p in 0 1; do
  [ -f "$SNAP_FILE.p$p" ] || { echo "missing partition frame $SNAP_FILE.p$p" >&2; exit 1; }
done

# Restart restores both partitions.
"$BIN/hyrec-server" -addr "$SNAP_ADDR" -partitions 2 -rotate 0 -snapshot "$SNAP_FILE" &
SNAP_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$SNAP_BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SNAP_PID 2>/dev/null; then
    echo "snapshot server died on restart" >&2; exit 1
  fi
  sleep 0.1
done
USERS_AFTER=$(curl -fsS "$SNAP_BASE/stats" | sed -n 's/.*"users":\([0-9]*\).*/\1/p')
KNN_AFTER=$(curl -fsS "$SNAP_BASE/stats" | sed -n 's/.*"knn_entries":\([0-9]*\).*/\1/p')
[ "$USERS_AFTER" = "$USERS_BEFORE" ] \
  || { echo "population changed across restart: $USERS_BEFORE -> $USERS_AFTER" >&2; exit 1; }
[ "$KNN_AFTER" -gt 0 ] || { echo "KNN tables empty after restart" >&2; exit 1; }
kill -TERM $SNAP_PID
wait $SNAP_PID

echo "--- elastic topology: live 2→4 scale-out under traffic (SIGHUP)"
SCALE_ADDR="127.0.0.1:18083"
SCALE_BASE="http://$SCALE_ADDR"
"$BIN/hyrec-server" -addr "$SCALE_ADDR" -partitions 2 -scale 4 -rotate 0 \
  -lease-ttl 2s -fallback-workers 2 &
SCALE_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$SCALE_BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $SCALE_PID 2>/dev/null; then
    echo "scale server died during startup" >&2; exit 1
  fi
  sleep 0.1
done

# Seed a population and confirm the starting topology.
RATINGS='{"ratings":['
for u in 1 2 3 4 5 6 7 8 9 10 11 12; do
  RATINGS+="{\"uid\":$u,\"item\":$((u % 5)),\"liked\":true},"
  RATINGS+="{\"uid\":$u,\"item\":$((u % 7 + 10)),\"liked\":false},"
done
RATINGS="${RATINGS%,}]}"
curl -fsS -X POST "$SCALE_BASE/v1/rate" -H 'Content-Type: application/json' -d "$RATINGS" >/dev/null
curl -fsS "$SCALE_BASE/v1/topology" | grep -q '"partitions":2' \
  || { echo "starting topology is not 2 partitions" >&2; exit 1; }

# Live traffic through the widget loop while the scale-out runs.
"$BIN/hyrec-widget" -server "$SCALE_BASE" -users 12 -requests 3 &
WIDGET_PID=$!
kill -HUP $SCALE_PID
wait $WIDGET_PID

# The migration must complete: 4 partitions, migrating:false, on both
# the admin endpoint and /stats.
for i in $(seq 1 50); do
  TOPO=$(curl -fsS "$SCALE_BASE/v1/topology")
  if echo "$TOPO" | grep -q '"partitions":4' && echo "$TOPO" | grep -q '"migrating":false'; then break; fi
  sleep 0.1
done
echo "$TOPO" | grep -q '"partitions":4' || { echo "scale-out never completed: $TOPO" >&2; exit 1; }
echo "$TOPO" | grep -q '"migrating":false' || { echo "still migrating: $TOPO" >&2; exit 1; }
STATS=$(curl -fsS "$SCALE_BASE/stats")
echo "$STATS" | grep -q '"migrating":false' || { echo "/stats still migrating: $STATS" >&2; exit 1; }
echo "$STATS" | grep -q '"topology_partitions":4' || { echo "/stats topology wrong: $STATS" >&2; exit 1; }
curl -fsS "$SCALE_BASE/metrics" | grep -q '^hyrec_topology_partitions 4' \
  || { echo "/metrics missing topology gauge" >&2; exit 1; }

# Every seeded user still answers /v1/recs after the migration.
for u in 1 2 3 4 5 6 7 8 9 10 11 12; do
  curl -fsS "$SCALE_BASE/v1/recs?uid=$u" | grep -q '"recs"' \
    || { echo "user $u cannot fetch recs after scale-out" >&2; exit 1; }
done

kill -TERM $SCALE_PID
wait $SCALE_PID

echo "--- browser fleet: 200 WebSocket sessions vs a 2-partition server, one forced mass disconnect"
FLEET_ADDR="127.0.0.1:18084"
FLEET_BASE="http://$FLEET_ADDR"
"$BIN/hyrec-server" -addr "$FLEET_ADDR" -partitions 2 -rotate 0 \
  -lease-ttl 300ms -lease-retries 1 -fallback-workers 4 &
FLEET_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$FLEET_BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 $FLEET_PID 2>/dev/null; then
    echo "fleet server died during startup" >&2; exit 1
  fi
  sleep 0.1
done

# Seed 50 users: the ratings fill the staleness queue the fleet must drain.
RATINGS='{"ratings":['
for u in $(seq 1 50); do
  RATINGS+="{\"uid\":$u,\"item\":$((u % 11)),\"liked\":true},"
  RATINGS+="{\"uid\":$u,\"item\":$((u % 7 + 11)),\"liked\":false},"
done
RATINGS="${RATINGS%,}]}"
curl -fsS -X POST "$FLEET_BASE/v1/rate" -H 'Content-Type: application/json' -d "$RATINGS" >/dev/null
curl -fsS "$FLEET_BASE/stats" | grep -Eq '"sched_unrefreshed":[1-9]' \
  || { echo "seeding left no unrefreshed users to converge" >&2; exit 1; }

# A 200-session deterministic fleet over real sockets: 60% of leased
# jobs silently vanish, and 40% of the fleet is severed the moment half
# the users have converged. The widget exits non-zero unless every user
# converges within the budget.
"$BIN/hyrec-widget" -server "$FLEET_BASE" -fleet 200 -fleet-users 50 -seed 7 \
  -abandon 0.6 -silent-abandon -fleet-disconnect 0.4 -work-duration 60s

STATS=$(curl -fsS "$FLEET_BASE/stats")
echo "$STATS" | grep -Eq '"sched_unrefreshed":0' \
  || { echo "fleet left users unrefreshed: $STATS" >&2; exit 1; }
# Silent churn plus the mass disconnect must have burned leases...
echo "$STATS" | grep -Eq '"sched_expired":[1-9]' \
  || { echo "no lease ever burned under 60% silent churn: $STATS" >&2; exit 1; }
# ...and the fallback pool must have absorbed them.
echo "$STATS" | grep -Eq '"sched_fallback_runs":[1-9]' \
  || { echo "fallback pool absorbed no burned leases: $STATS" >&2; exit 1; }
curl -fsS "$FLEET_BASE/metrics" | grep -q '^hyrec_ws_jobs_pushed_total [1-9]' \
  || { echo "/metrics shows no jobs pushed over WebSockets" >&2; exit 1; }

kill -TERM $FLEET_PID
wait $FLEET_PID

echo "--- multi-node: 3-node deployment, proxying, replication, SIGKILL failover"
N1="127.0.0.1:18085"; N2="127.0.0.1:18086"; N3="127.0.0.1:18087"
PEERS="n1=http://$N1,n2=http://$N2,n3=http://$N3"
NODE_FLAGS=(-partitions 6 -peers "$PEERS" -rotate 0
  -replicate-every 25ms -anti-entropy 250ms -heartbeat 100ms -dead-after 3
  -peer-secret smoke-node-secret)
"$BIN/hyrec-node" -id n1 -addr "$N1" "${NODE_FLAGS[@]}" &
NODE1_PID=$!
"$BIN/hyrec-node" -id n2 -addr "$N2" "${NODE_FLAGS[@]}" &
NODE2_PID=$!
"$BIN/hyrec-node" -id n3 -addr "$N3" "${NODE_FLAGS[@]}" &
NODE3_PID=$!
for base in "http://$N1" "http://$N2" "http://$N3"; do
  for i in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -fsS "$base/healthz" >/dev/null || { echo "node at $base never came up" >&2; exit 1; }
done

# The node plane is gated by -peer-secret: a well-formed map push
# without the shared secret must bounce with 403 (were it accepted, this
# epoch-99 push would hijack partition ownership of the whole cluster).
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$N1/v1/nodes" \
  -H 'Content-Type: application/json' \
  -d '{"epoch":99,"partitions":6,"nodes":[{"id":"evil","addr":"http://127.0.0.1:1"}]}')
[ "$CODE" = "403" ] || { echo "unauthenticated node-map push answered $CODE, want 403" >&2; exit 1; }

# All ratings go through node 1 only: non-owned users are proxied to
# their primaries, owned ones replicate synchronously to their mirrors.
RATINGS='{"ratings":['
for u in $(seq 1 12); do
  RATINGS+="{\"uid\":$u,\"item\":$((u % 5 + 1)),\"liked\":true},"
  RATINGS+="{\"uid\":$u,\"item\":$((u % 7 + 20)),\"liked\":false},"
done
RATINGS="${RATINGS%,}]}"
ACCEPTED=$(curl -fsS -X POST "http://$N1/v1/rate" -H 'Content-Type: application/json' -d "$RATINGS")
echo "$ACCEPTED" | grep -q '"accepted":24' || { echo "multi-node rate lost ratings: $ACCEPTED" >&2; exit 1; }

# Topology from any node names all three members and locates uid 7's
# current primary (poll: a slow member may transiently look dead during
# the staggered boot, which reshuffles the map until it reappears).
for i in $(seq 1 100); do
  TOPO=$(curl -fsS "http://$N1/v1/topology?uid=7" || true)
  if echo "$TOPO" | grep -q '"id":"n1"' && echo "$TOPO" | grep -q '"id":"n2"' \
    && echo "$TOPO" | grep -q '"id":"n3"' && echo "$TOPO" | grep -q '"owner"'; then break; fi
  sleep 0.1
done
OWNER_ADDR=$(echo "$TOPO" | sed -n 's/.*"owner":{"id":"[^"]*","addr":"\([^"]*\)".*/\1/p')
[ -n "$OWNER_ADDR" ] || { echo "topology never converged on 3 nodes + owner for uid 7: $TOPO" >&2; exit 1; }

case "$OWNER_ADDR" in
  *18085) VICTIM_PID=$NODE1_PID; SURVIVOR_A="http://$N2"; SURVIVOR_B="http://$N3" ;;
  *18086) VICTIM_PID=$NODE2_PID; SURVIVOR_A="http://$N1"; SURVIVOR_B="http://$N3" ;;
  *18087) VICTIM_PID=$NODE3_PID; SURVIVOR_A="http://$N1"; SURVIVOR_B="http://$N2" ;;
  *) echo "owner addr $OWNER_ADDR matches no node" >&2; exit 1 ;;
esac
echo "    SIGKILL uid 7's primary at $OWNER_ADDR"
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true

# Survivors converge on a two-node map with a bumped epoch within the
# heartbeat budget (100ms probes, dead after 3 misses).
for i in $(seq 1 100); do
  STATS=$(curl -fsS "$SURVIVOR_A/stats" || true)
  if echo "$STATS" | grep -q '"nodes":2'; then break; fi
  sleep 0.1
done
echo "$STATS" | grep -q '"nodes":2' || { echo "survivors never declared the dead node: $STATS" >&2; exit 1; }
echo "$STATS" | grep -Eq '"node_epoch":([2-9]|[0-9]{2,})' \
  || { echo "no epoch bump after failover: $STATS" >&2; exit 1; }

# The promoted replica answers for the dead node's users from
# replicated state — via either survivor (non-owners proxy).
curl -fsS "$SURVIVOR_A/v1/recs?uid=7" | grep -q '"recs"' \
  || { echo "uid 7 unservable after failover via $SURVIVOR_A" >&2; exit 1; }
curl -fsS "$SURVIVOR_B/v1/recs?uid=7" | grep -q '"recs"' \
  || { echo "uid 7 unservable after failover via $SURVIVOR_B" >&2; exit 1; }

# The promotion is visible on /metrics: the fleet-wide failover counter
# moved.
FAILOVERS=0
for base in "$SURVIVOR_A" "$SURVIVOR_B"; do
  F=$(curl -fsS "$base/metrics" | sed -n 's/^hyrec_failovers_total \([0-9][0-9]*\)$/\1/p')
  FAILOVERS=$((FAILOVERS + ${F:-0}))
done
[ "$FAILOVERS" -ge 1 ] || { echo "hyrec_failovers_total never incremented after a node death" >&2; exit 1; }

for pid in $NODE1_PID $NODE2_PID $NODE3_PID; do
  [ "$pid" = "$VICTIM_PID" ] && continue
  kill -TERM "$pid" 2>/dev/null || true
done
wait 2>/dev/null || true

echo "smoke test passed"
