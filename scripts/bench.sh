#!/usr/bin/env bash
# CI bench-regression guard: replay the capacity scenario matrix at a
# short window and fail when throughput collapses or allocations blow up
# versus the committed BENCH_hotpath.json.
#
# Thresholds (overridable via env): throughput may not fall below
# TPUT_FLOOR of the committed baseline — deliberately loose, CI machines
# differ wildly from the one that wrote the baseline — while allocs/op,
# which is deterministic per build, may not exceed ALLOC_CEIL times the
# baseline. Refresh the baseline after an intentional perf change with:
#   go run ./cmd/hyrec-bench -exp capacity -window 1s -bench-out BENCH_hotpath.json
#
# On top of the ratio bounds, ALLOC_CAPS pins absolute allocs/op
# ceilings on the rows the perf work guards hardest: the kernel row must
# stay allocation-free and the serving hot path must stay pooled. These
# do not loosen when the baseline is refreshed.
#
# Baseline keys: one row per (scenario, service, mode) — the engine
# matrix (rate-heavy, job-worker-heavy, mixed-churn), the raw
# similarity-kernel row (knn-kernel/core: ops are candidate scores
# through SelectKNNInto, no server in the way), the parallel-scaling
# row (job-worker-heavy/engine-w4: the same serving workload at 4
# closed-loop workers regardless of the report's top-level worker
# count — floors its window at 1s so per-worker startup allocations
# amortize out of allocs/op), the cluster serving row
# (job-worker-heavy/cluster-4), the
# elastic-topology row
# (rebalance/cluster-2x4: ops are users *moved* by live 2↔4 scale
# cycles, throughput is users-moved/sec, latency is per-moved-user),
# the WebSocket worker row (job-ws/engine-ws: ops are completed
# push→compute→result cycles over persistent sockets), the fleet row
# (fleet-churn/engine-fleet: ops are jobs completed by a churny
# deterministic fleet, latency is per-convergence-cycle — this scenario
# floors its window at 1s so short CI windows still amortize cycle
# variance), the wire rows, and the adversarial overload row
# (rate-under-read-flood/engine-wire: rating ingest measured while a
# 10x paced read flood is being shed by the admission gate — its
# shed_total must stay non-zero, Compare fails a build whose gate stops
# engaging under the same flood, and the allocs/op ceiling is skipped
# for it since the flood's own allocations land in the process-wide
# counters). Compare fails when a baseline row goes unmeasured or a
# measured row is missing from the baseline, so adding a scenario means
# refreshing BENCH_hotpath.json with the command above.
set -euo pipefail
cd "$(dirname "$0")/.."

WINDOW="${WINDOW:-250ms}"
TPUT_FLOOR="${TPUT_FLOOR:-0.20}"
ALLOC_CEIL="${ALLOC_CEIL:-1.5}"
# Absolute ceilings (allocs/op is deterministic per build): the kernel
# row stays allocation-free, the serving hot path stays pooled.
ALLOC_CAPS="${ALLOC_CAPS:-knn-kernel/core/inproc=0.5,job-worker-heavy/engine/inproc=30}"

# Replay under the baseline's recorded workload configuration — per-op
# numbers are only commensurate at matching concurrency, population and
# seed (Compare refuses mismatches). Only the window may differ.
field() { sed -n "s/^  \"$1\": \([0-9-]*\),*/\1/p" BENCH_hotpath.json | head -1; }
WORKERS="$(field workers)"
USERS="$(field users)"
SEED="$(field seed)"

go run ./cmd/hyrec-bench -exp capacity -window "$WINDOW" \
  -bench-workers "$WORKERS" -bench-users "$USERS" -seed "$SEED" \
  -bench-baseline BENCH_hotpath.json \
  -bench-tolerance "$TPUT_FLOOR" \
  -bench-allocs-tolerance "$ALLOC_CEIL" \
  -bench-allocs-cap "$ALLOC_CAPS"
