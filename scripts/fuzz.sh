#!/usr/bin/env bash
# Short-fuzz smoke: give every native Go fuzzer a small time budget so a
# decoder panic or round-trip divergence fails CI fast. Longer local runs:
#   FUZZTIME=2m ./scripts/fuzz.sh
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

run() {
  local pkg="$1" target="$2"
  echo "--- fuzz $target ($pkg, $FUZZTIME)"
  go test -run xxx -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
}

run ./internal/core FuzzSimilarityKernelEquivalence
run ./internal/wire FuzzDecodeRateBatch
run ./internal/wire FuzzDecodeResult
run ./internal/wire FuzzDecodeAck
run ./internal/wire FuzzDecodeJob
run ./internal/wire FuzzDecodeNodeMap
run ./internal/wire FuzzDecodeReplBatch
run ./internal/persist FuzzSnapshotDecode
run ./internal/ws FuzzDecodeWSFrame
run ./internal/frame FuzzDecodeFrame
run ./internal/frame FuzzDecodeHello
run ./internal/frame FuzzDecodeError
run ./internal/frame FuzzDecodeRateBatch
run ./internal/frame FuzzDecodeAckBatch
run ./internal/frame FuzzDecodeReplBatch
run ./internal/frame FuzzDecodeU32s

echo "all fuzzers clean"
